#include "core/lppa_auction.h"

#include <gtest/gtest.h>

#include <set>

namespace lppa::core {
namespace {

struct World {
  std::vector<auction::SuLocation> locations;
  std::vector<BidVector> bids;
};

World make_world(std::size_t n, std::size_t k, std::uint64_t seed,
                 bool distinct_columns = false) {
  Rng rng(seed);
  World w;
  w.bids.assign(n, BidVector(k));
  if (distinct_columns) {
    for (std::size_t r = 0; r < k; ++r) {
      std::vector<Money> column(n);
      for (std::size_t u = 0; u < n; ++u) column[u] = u % 16;
      rng.shuffle(column);
      for (std::size_t u = 0; u < n; ++u) w.bids[u][r] = column[u];
    }
  } else {
    for (auto& bv : w.bids) {
      for (auto& b : bv) b = rng.below(16);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
  }
  return w;
}

LppaConfig make_config(std::size_t k, double replace_prob = 0.0) {
  LppaConfig cfg;
  cfg.num_channels = k;
  cfg.lambda = 100;
  cfg.coord_width = 14;
  cfg.bid = PpbsBidConfig::advanced(
      15, 3, 4, ZeroDisguisePolicy::uniform(15, replace_prob));
  return cfg;
}

TEST(LppaAuction, ValidatesInputs) {
  LppaAuction engine(make_config(2), 1);
  Rng rng(1);
  EXPECT_THROW(engine.run({}, {}, rng), LppaError);
  EXPECT_THROW(engine.run({{0, 0}}, {{1, 2}, {3, 4}}, rng), LppaError);
  EXPECT_THROW(engine.run({{0, 0}}, {{1}}, rng), LppaError);  // k mismatch
}

TEST(LppaAuction, ConflictGraphMatchesPlaintext) {
  const World w = make_world(25, 3, 11);
  LppaAuction engine(make_config(3), 2);
  Rng rng(5);
  const auto result = engine.run(w.locations, w.bids, rng);
  const auto plain =
      auction::ConflictGraph::from_locations(w.locations, 100);
  EXPECT_EQ(result.view.conflicts, plain);
}

TEST(LppaAuction, NoDisguiseMatchesPlainAuctionOutcome) {
  // With replace_prob 0 and distinct bids per column, LPPA must award
  // exactly what the plaintext auction awards, at the same charges.
  // LppaAuction consumes one fork() of its rng for SU masking before
  // allocating; discard one fork on the plain side so both allocators
  // draw the same channel sequence.
  const std::size_t k = 4;
  const World w = make_world(12, k, 21, /*distinct_columns=*/true);
  const auction::PlainAuction plain(k, 100);
  Rng rng_plain(77);
  rng_plain.fork();
  const auto plain_outcome = plain.run(w.locations, w.bids, rng_plain);

  LppaAuction engine(make_config(k, 0.0), 3);
  Rng rng_lppa(77);
  const auto lppa_outcome = engine.run(w.locations, w.bids, rng_lppa);

  EXPECT_EQ(lppa_outcome.outcome.awards, plain_outcome.awards);
  EXPECT_EQ(lppa_outcome.outcome.winning_bid_sum(),
            plain_outcome.winning_bid_sum());
  EXPECT_EQ(lppa_outcome.manipulations_detected, 0u);
}

TEST(LppaAuction, ChargesAreTtpValidatedTrueBids) {
  const World w = make_world(15, 3, 31);
  LppaAuction engine(make_config(3), 4);
  Rng rng(9);
  const auto result = engine.run(w.locations, w.bids, rng);
  for (const auto& award : result.outcome.awards) {
    if (award.valid) {
      EXPECT_EQ(award.charge, w.bids[award.user][award.channel]);
      EXPECT_GT(award.charge, 0u);
    } else {
      EXPECT_EQ(award.charge, 0u);
      EXPECT_EQ(w.bids[award.user][award.channel], 0u);
    }
  }
}

TEST(LppaAuction, EachUserWinsAtMostOnce) {
  const World w = make_world(20, 5, 41);
  LppaAuction engine(make_config(5, 0.5), 5);
  Rng rng(13);
  const auto result = engine.run(w.locations, w.bids, rng);
  std::set<UserId> winners;
  for (const auto& award : result.outcome.awards) {
    EXPECT_TRUE(winners.insert(award.user).second);
  }
}

TEST(LppaAuction, CoWinnersNeverConflict) {
  const World w = make_world(20, 3, 51);
  LppaAuction engine(make_config(3, 0.3), 6);
  Rng rng(17);
  const auto result = engine.run(w.locations, w.bids, rng);
  const auto& g = result.view.conflicts;
  const auto& awards = result.outcome.awards;
  for (std::size_t i = 0; i < awards.size(); ++i) {
    for (std::size_t j = i + 1; j < awards.size(); ++j) {
      if (awards[i].channel == awards[j].channel) {
        EXPECT_FALSE(g.conflicts(awards[i].user, awards[j].user));
      }
    }
  }
}

TEST(LppaAuction, FullDisguiseCanElectInvalidWinners) {
  // With replace_prob 1 every zero masquerades as a positive bid; zero
  // bidders win slots that the TTP then invalidates.
  std::vector<auction::SuLocation> locs;
  std::vector<BidVector> bids;
  for (int i = 0; i < 10; ++i) {
    locs.push_back({static_cast<std::uint64_t>(i) * 1000, 0});
    bids.push_back({0});  // everyone bids zero on the single channel
  }
  LppaAuction engine(make_config(1, 1.0), 7);
  Rng rng(23);
  const auto result = engine.run(locs, bids, rng);
  EXPECT_FALSE(result.outcome.awards.empty());
  for (const auto& award : result.outcome.awards) {
    EXPECT_FALSE(award.valid);
  }
  EXPECT_EQ(result.outcome.winning_bid_sum(), 0u);
}

TEST(LppaAuction, TtpBatchingRespectsBatchSize) {
  const World w = make_world(30, 4, 61);
  auto cfg = make_config(4);
  cfg.ttp_batch_size = 4;
  LppaAuction engine(cfg, 8);
  Rng rng(29);
  const auto result = engine.run(w.locations, w.bids, rng);
  const std::size_t n_awards = result.outcome.awards.size();
  EXPECT_EQ(engine.ttp().queries_processed(), n_awards);
  EXPECT_EQ(engine.ttp().batches_processed(),
            (n_awards + 3) / 4);  // ceil division
}

TEST(LppaAuction, WireVolumeAccounted) {
  const World w = make_world(8, 2, 71);
  LppaAuction engine(make_config(2), 9);
  Rng rng(31);
  const auto result = engine.run(w.locations, w.bids, rng);
  std::size_t loc_bytes = 0, bid_bytes = 0;
  for (const auto& s : result.view.locations) loc_bytes += s.wire_size();
  for (const auto& s : result.view.bids) bid_bytes += s.wire_size();
  EXPECT_EQ(result.view.location_wire_bytes, loc_bytes);
  EXPECT_EQ(result.view.bid_wire_bytes, bid_bytes);
  EXPECT_GT(loc_bytes, 0u);
  EXPECT_GT(bid_bytes, 0u);
}

TEST(LppaAuction, DeterministicGivenSeeds) {
  const World w = make_world(15, 3, 81);
  LppaAuction e1(make_config(3, 0.4), 10);
  LppaAuction e2(make_config(3, 0.4), 10);
  Rng r1(37), r2(37);
  const auto a = e1.run(w.locations, w.bids, r1);
  const auto b = e2.run(w.locations, w.bids, r2);
  EXPECT_EQ(a.outcome.awards, b.outcome.awards);
}

TEST(LppaAuction, AesSealedCipherRunsEndToEnd) {
  // Cipher agility at the protocol level: swapping the TTP cipher must
  // not change anything observable except the sealed bytes.
  const World w = make_world(12, 3, 271);
  auto chacha_cfg = make_config(3, 0.0);
  auto aes_cfg = chacha_cfg;
  aes_cfg.bid.sealed_cipher = crypto::SealedCipher::kAes128Ctr;

  LppaAuction chacha(chacha_cfg, 44);
  LppaAuction aes(aes_cfg, 44);
  Rng r1(66), r2(66);
  const auto a = chacha.run(w.locations, w.bids, r1);
  const auto b = aes.run(w.locations, w.bids, r2);
  EXPECT_EQ(a.outcome.awards, b.outcome.awards);
  EXPECT_EQ(b.manipulations_detected, 0u);
}

TEST(LppaAuction, SecondPriceChargesAtMostFirstPrice) {
  const World w = make_world(20, 4, 301);
  auto first_cfg = make_config(4, 0.0);
  auto second_cfg = first_cfg;
  second_cfg.charging_rule = ChargingRule::kSecondPrice;

  LppaAuction first(first_cfg, 12);
  LppaAuction second(second_cfg, 12);
  Rng r1(55), r2(55);
  const auto first_outcome = first.run(w.locations, w.bids, r1);
  const auto second_outcome = second.run(w.locations, w.bids, r2);

  // Same keys, same seeds -> same awards; only charges differ.
  ASSERT_EQ(first_outcome.outcome.awards.size(),
            second_outcome.outcome.awards.size());
  for (std::size_t i = 0; i < first_outcome.outcome.awards.size(); ++i) {
    const auto& fp = first_outcome.outcome.awards[i];
    const auto& sp = second_outcome.outcome.awards[i];
    EXPECT_EQ(fp.user, sp.user);
    EXPECT_EQ(fp.channel, sp.channel);
    if (fp.valid && sp.valid) {
      EXPECT_LE(sp.charge, fp.charge) << "award " << i;
    }
  }
  EXPECT_LE(second_outcome.outcome.winning_bid_sum(),
            first_outcome.outcome.winning_bid_sum());
}

TEST(LppaAuction, SecondPriceChargeEqualsColumnRunnerUp) {
  // Single channel, no conflicts, distinct bids: the winner's charge is
  // exactly the second-highest bid.
  std::vector<auction::SuLocation> locs;
  std::vector<BidVector> bids;
  const std::vector<Money> prices = {3, 11, 7, 5};
  for (std::size_t i = 0; i < prices.size(); ++i) {
    locs.push_back({static_cast<std::uint64_t>(i) * 5000, 0});
    bids.push_back({prices[i]});
  }
  auto cfg = make_config(1, 0.0);
  cfg.charging_rule = ChargingRule::kSecondPrice;
  LppaAuction engine(cfg, 3);
  Rng rng(9);
  const auto result = engine.run(locs, bids, rng);
  ASSERT_FALSE(result.outcome.awards.empty());
  const auto& top = result.outcome.awards.front();
  EXPECT_EQ(top.user, 1u);     // bid 11 wins first
  EXPECT_EQ(top.charge, 7u);   // pays the runner-up price
}

TEST(LppaAuction, RevenueNeverExceedsPlainAuction) {
  // Zero-disguise can only displace genuine winners, never add revenue.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const World w = make_world(20, 4, 90 + seed);
    const auction::PlainAuction plain(4, 100);
    Rng rp(seed);
    const auto plain_outcome = plain.run(w.locations, w.bids, rp);

    LppaAuction engine(make_config(4, 0.8), seed);
    Rng rl(seed);
    const auto lppa_outcome = engine.run(w.locations, w.bids, rl);
    EXPECT_LE(lppa_outcome.outcome.winning_bid_sum(),
              plain_outcome.winning_bid_sum() + 15)
        << "seed " << seed;
    // (+bmax slack: different tie-breaks can shuffle one winner.)
  }
}

}  // namespace
}  // namespace lppa::core
