#include "core/policy_advisor.h"

#include <gtest/gtest.h>

#include "core/theorems.h"

namespace lppa::core {
namespace {

AdvisorScenario default_scenario() {
  AdvisorScenario s;
  s.bmax = 15;
  s.b_n = 12;
  s.m = 10;
  s.t = 3;
  return s;
}

TEST(PolicyAdvisor, ValidatesScenario) {
  AdvisorScenario s = default_scenario();
  s.b_n = 0;
  EXPECT_THROW(PolicyAdvisor(s, DisguiseFamily::kUniform), LppaError);
  s = default_scenario();
  s.b_n = 16;
  EXPECT_THROW(PolicyAdvisor(s, DisguiseFamily::kUniform), LppaError);
  s = default_scenario();
  s.t = 0;
  EXPECT_THROW(PolicyAdvisor(s, DisguiseFamily::kUniform), LppaError);
}

TEST(PolicyAdvisor, PrivacyIsMonotoneInReplaceProb) {
  const PolicyAdvisor advisor(default_scenario(), DisguiseFamily::kUniform);
  double prev = -1.0;
  for (double r = 0.0; r <= 1.0; r += 0.1) {
    const double p = advisor.privacy_at(r);
    EXPECT_GE(p, prev - 1e-12) << "r=" << r;
    prev = p;
  }
}

TEST(PolicyAdvisor, SurvivalIsMonotoneDecreasing) {
  const PolicyAdvisor advisor(default_scenario(), DisguiseFamily::kLinear);
  double prev = 2.0;
  for (double r = 0.0; r <= 1.0; r += 0.1) {
    const double s = advisor.survival_at(r);
    EXPECT_LE(s, prev + 1e-12) << "r=" << r;
    prev = s;
  }
}

TEST(PolicyAdvisor, NoDisguiseMeansNoPrivacyFullSurvival) {
  const PolicyAdvisor advisor(default_scenario(), DisguiseFamily::kUniform);
  EXPECT_NEAR(advisor.privacy_at(0.0), 0.0, 1e-12);
  EXPECT_NEAR(advisor.survival_at(0.0), 1.0, 1e-12);
}

TEST(PolicyAdvisor, RecommendationMeetsTheTargetMinimally) {
  const PolicyAdvisor advisor(default_scenario(), DisguiseFamily::kUniform);
  const double target = 0.3;
  const auto advice = advisor.recommend(target);
  ASSERT_TRUE(advice.target_achievable);
  EXPECT_GE(advice.privacy, target);
  // Minimality: a slightly smaller probability misses the target.
  EXPECT_LT(advisor.privacy_at(advice.replace_prob - 0.01), target);
  // Consistency of the reported numbers.
  EXPECT_NEAR(advice.privacy, advisor.privacy_at(advice.replace_prob), 1e-12);
  EXPECT_NEAR(advice.top_bid_survival,
              advisor.survival_at(advice.replace_prob), 1e-12);
}

TEST(PolicyAdvisor, TrivialTargetCostsNothing) {
  const PolicyAdvisor advisor(default_scenario(), DisguiseFamily::kLinear);
  const auto advice = advisor.recommend(0.0);
  EXPECT_TRUE(advice.target_achievable);
  EXPECT_NEAR(advice.replace_prob, 0.0, 1e-3);
  EXPECT_NEAR(advice.top_bid_survival, 1.0, 1e-3);
}

TEST(PolicyAdvisor, UnachievableTargetReportedHonestly) {
  // With one zero and a huge harvest, no leakage is impossible.
  AdvisorScenario s = default_scenario();
  s.m = 1;
  s.t = 3;
  const PolicyAdvisor advisor(s, DisguiseFamily::kUniform);
  const auto advice = advisor.recommend(0.9);
  EXPECT_FALSE(advice.target_achievable);
  EXPECT_EQ(advice.replace_prob, 1.0);
  EXPECT_LT(advice.privacy, 0.9);
}

TEST(PolicyAdvisor, HigherTargetsCostMoreSurvival) {
  const PolicyAdvisor advisor(default_scenario(), DisguiseFamily::kUniform);
  const auto low = advisor.recommend(0.1);
  const auto high = advisor.recommend(0.3);
  ASSERT_TRUE(low.target_achievable);
  ASSERT_TRUE(high.target_achievable);
  EXPECT_LT(low.replace_prob, high.replace_prob);
  EXPECT_GE(low.top_bid_survival, high.top_bid_survival);
}

TEST(PolicyAdvisor, LinearFamilyPreservesMoreSurvivalThanUniform) {
  // For the same privacy target the linear family (small disguises more
  // likely) should usually keep the top bid alive at least as often...
  // but it also needs a HIGHER replace probability to reach the same
  // no-leakage level (its mass rarely lands above b_N).  What must hold
  // unconditionally: both meet the target.
  const double target = 0.25;
  const PolicyAdvisor uniform(default_scenario(), DisguiseFamily::kUniform);
  const PolicyAdvisor linear(default_scenario(), DisguiseFamily::kLinear);
  const auto u = uniform.recommend(target);
  const auto l = linear.recommend(target);
  if (u.target_achievable) {
    EXPECT_GE(u.privacy, target);
  }
  if (l.target_achievable) {
    EXPECT_GE(l.privacy, target);
  }
}

TEST(PolicyAdvisor, AdviceAgreesWithTheoremFunctions) {
  const AdvisorScenario s = default_scenario();
  const PolicyAdvisor advisor(s, DisguiseFamily::kUniform);
  const auto advice = advisor.recommend(0.4);
  const auto policy = ZeroDisguisePolicy::uniform(s.bmax, advice.replace_prob);
  EXPECT_NEAR(advice.privacy,
              theorems::thm2_no_leakage_exact(s.b_n, s.m, s.t, policy),
              1e-12);
  EXPECT_NEAR(advice.top_bid_survival,
              theorems::thm1_zero_not_win(s.b_n, s.m, policy), 1e-12);
}

}  // namespace
}  // namespace lppa::core
