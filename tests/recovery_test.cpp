// Crash-tolerance of the recoverable auction round (write-ahead journal
// + deterministic recovery + deadline-quorum degradation).
//
// The central assertion is the issue's acceptance criterion, swept
// exhaustively: kill the auctioneer at EVERY defined crash point (every
// occurrence of every CrashPoint the round reaches) and the recovered
// round must publish byte-identical awards and charges to the crash-free
// run, with the SUs never resubmitting — only the journal brings the
// state back.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "proto/fault.h"
#include "proto/journal.h"
#include "proto/session.h"
#include "sim/multi_round.h"

namespace lppa::proto {
namespace {

struct WireWorld {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  core::LppaConfig config;
};

WireWorld make_world(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  WireWorld w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  w.config.num_channels = k;
  w.config.lambda = 100;
  w.config.coord_width = 14;
  w.config.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  w.config.ttp_batch_size = 4;
  return w;
}

constexpr std::uint64_t kTtpSeed = 77;
constexpr std::uint64_t kWireSeed = 5;

RecoverableWireResult run_recoverable(const WireWorld& w, MessageBus& bus,
                                      const RecoverableSessionConfig& recov,
                                      CrashInjector* crashes,
                                      const std::vector<std::size_t>& exclude =
                                          {}) {
  core::TrustedThirdParty ttp(w.config.bid, kTtpSeed);
  return run_recoverable_wire_auction(w.config, ttp, w.locations, w.bids, bus,
                                      kWireSeed, recov, crashes, exclude);
}

TEST(RecoverySession, FaultFreeMatchesHardened) {
  const WireWorld w = make_world(12, 3, 21);

  core::TrustedThirdParty ttp_a(w.config.bid, kTtpSeed);
  MessageBus bus_a;
  Rng rng_a(kWireSeed);
  const auto hardened = run_hardened_wire_auction(w.config, ttp_a, w.locations,
                                                  w.bids, bus_a, rng_a);

  MessageBus bus_b;
  const auto recoverable = run_recoverable(w, bus_b, {}, nullptr);

  EXPECT_EQ(recoverable.awards, hardened.awards);
  EXPECT_TRUE(recoverable.report.completed);
  EXPECT_FALSE(recoverable.report.degraded);
  EXPECT_EQ(recoverable.report.crash_recoveries, 0u);
  EXPECT_EQ(recoverable.report.replayed_records, 0u);
  EXPECT_EQ(recoverable.report.survivors.size(), 12u);
  // The journal covers the whole round: start, 24 submissions, the three
  // phase commits, and one record per charge batch.
  EXPECT_GT(recoverable.report.journal_records, 24u + 3u);
  EXPECT_EQ(recoverable.report.journal_bytes, recoverable.journal.size());
  EXPECT_FALSE(recoverable.announcement.empty());
}

TEST(RecoveryCrashMatrix, EveryCrashPointRecoversByteIdentically) {
  const WireWorld w = make_world(10, 3, 31);

  // Crash-free reference run, with a counting injector measuring how
  // many times the round reaches each crash point.
  MessageBus clean_bus;
  CrashInjector counter;
  const auto clean = run_recoverable(w, clean_bus, {}, &counter);
  ASSERT_TRUE(clean.report.completed);
  ASSERT_EQ(counter.crashes_fired(), 0u);
  ASSERT_GT(counter.total_hits(), 0u);
  // Every defined crash point is reached at least once in a full round —
  // except kMidChurn, which only churn harnesses drive (bench/abl_churn
  // and the churn soak test own that leg of the matrix).
  for (std::size_t p = 0; p < kNumCrashPoints; ++p) {
    const auto point = static_cast<CrashPoint>(p);
    if (point == CrashPoint::kMidChurn) continue;
    ASSERT_GT(counter.hits(point), 0u)
        << "crash point " << p << " never reached; the matrix has a hole";
  }

  // The matrix: one run per (point, nth occurrence), each killed exactly
  // once at that spot.
  std::size_t runs = 0;
  for (std::size_t p = 0; p < kNumCrashPoints; ++p) {
    const auto point = static_cast<CrashPoint>(p);
    for (std::size_t nth = 0; nth < counter.hits(point); ++nth) {
      CrashInjector injector;
      injector.arm(point, nth);
      MessageBus bus;
      const auto crashed = run_recoverable(w, bus, {}, &injector);
      ++runs;

      ASSERT_EQ(injector.crashes_fired(), 1u)
          << "point " << p << " hit " << nth;
      EXPECT_EQ(crashed.report.crash_recoveries, 1u);
      EXPECT_GT(crashed.report.replayed_records, 0u);
      ASSERT_TRUE(crashed.report.completed) << crashed.report.summary();

      // Byte-identical outcome: same awards and charges, same published
      // announcement bytes.
      EXPECT_EQ(crashed.awards, clean.awards) << "point " << p << " hit "
                                              << nth;
      EXPECT_EQ(crashed.announcement, clean.announcement);
      EXPECT_EQ(crashed.report.survivors, clean.report.survivors);

      // Zero SU resubmissions: every SU sent exactly its two original
      // envelopes; recovery rebuilt the rest from the journal alone.
      EXPECT_EQ(crashed.report.retry_waves, 0u);
      for (std::size_t u = 0; u < w.bids.size(); ++u) {
        EXPECT_EQ(bus.link(Address::su(u), Address::auctioneer()).messages, 2u)
            << "su " << u << " resubmitted after crash at point " << p;
      }
    }
  }
  // 10 SUs x 2 submissions + finalize + allocation + charge batches +
  // publish: the sweep is a real matrix, not a couple of spot checks.
  EXPECT_GE(runs, 24u);
}

TEST(RecoverySession, RecoveryIsDeterministicPerSchedule) {
  const WireWorld w = make_world(8, 2, 41);
  const auto run = [&] {
    CrashInjector injector;
    injector.arm(CrashPoint::kAfterIngest, 5);
    injector.arm(CrashPoint::kAfterChargeCommit, 0);
    MessageBus bus;
    return run_recoverable(w, bus, {}, &injector);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.report.crash_recoveries, 2u);
  EXPECT_EQ(a.awards, b.awards);
  EXPECT_EQ(a.announcement, b.announcement);
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.report.to_json(), b.report.to_json());
}

TEST(RecoverySession, DeadlineExpiryMidRecoveryDegradesToQuorum) {
  const WireWorld w = make_world(10, 3, 51);
  const std::size_t silent_su = 4;

  // SU 4's link drops everything it sends; a crash after the first
  // accepted ingest burns the whole tick budget, so recovery resumes
  // past the deadline and must commit with the journaled quorum instead
  // of waiting out retry waves for the silent SU.
  FaultSpec mute;
  mute.drop = 1.0;
  FaultInjector faults(/*seed=*/1, {});
  faults.set_party_spec(Address::su(silent_su), mute);

  CrashInjector crashes;
  crashes.arm(CrashPoint::kAfterIngest, 0);

  RecoverableSessionConfig recov;
  recov.deadline_ticks = 8;
  recov.recovery_cost_ticks = 8;  // one crash eats the whole deadline
  recov.min_quorum = 2;

  MessageBus bus;
  bus.set_fault_injector(&faults);
  const auto degraded = run_recoverable(w, bus, recov, &crashes);

  ASSERT_TRUE(degraded.report.completed) << degraded.report.summary();
  EXPECT_TRUE(degraded.report.degraded);
  EXPECT_EQ(degraded.report.crash_recoveries, 1u);
  EXPECT_EQ(degraded.report.retry_waves, 0u);  // no wave fit the deadline
  EXPECT_EQ(degraded.report.deadline_ticks, 8u);
  EXPECT_GE(degraded.report.ticks_used, 8u);

  // The silent SU is excluded as a timeout; everyone else survives.
  ASSERT_EQ(degraded.report.excluded.size(), 1u);
  EXPECT_EQ(degraded.report.excluded[0].user, silent_su);
  EXPECT_EQ(degraded.report.excluded[0].reason,
            RoundReport::ExclusionReason::kTimeout);
  EXPECT_EQ(degraded.report.survivors.size(), 9u);

  // Allocation invariants hold in the degraded commit: awards only to
  // survivors, channels in range, at most one channel per winner, and a
  // channel shared only between non-conflicting winners.
  const std::set<std::size_t> survivors(degraded.report.survivors.begin(),
                                        degraded.report.survivors.end());
  std::vector<auction::SuLocation> survivor_locations;
  std::vector<std::size_t> survivor_slot(w.bids.size(), w.bids.size());
  for (const std::size_t u : degraded.report.survivors) {
    survivor_slot[u] = survivor_locations.size();
    survivor_locations.push_back(w.locations[u]);
  }
  const auto conflicts = auction::ConflictGraph::from_locations(
      survivor_locations, w.config.lambda);
  std::set<std::size_t> winners;
  for (const auto& award : degraded.awards) {
    EXPECT_TRUE(survivors.count(award.user)) << "award to excluded SU";
    EXPECT_LT(award.channel, w.config.num_channels);
    EXPECT_TRUE(winners.insert(award.user).second)
        << "su " << award.user << " won twice";
  }
  for (const auto& a : degraded.awards) {
    for (const auto& b : degraded.awards) {
      if (a.user == b.user || a.channel != b.channel) continue;
      EXPECT_FALSE(
          conflicts.conflicts(survivor_slot[a.user], survivor_slot[b.user]))
          << "conflicting SUs " << a.user << " and " << b.user
          << " share channel " << a.channel;
    }
  }

  // The degraded quorum commit equals a clean round restricted to the
  // survivors (SU randomness is forked by index either way).
  MessageBus clean_bus;
  const auto clean = run_recoverable(w, clean_bus, {}, nullptr, {silent_su});
  EXPECT_EQ(degraded.awards, clean.awards);
}

TEST(RecoverySession, QuorumNotMetIsTypedProtocolError) {
  const WireWorld w = make_world(4, 2, 61);

  FaultSpec mute;
  mute.drop = 1.0;
  FaultInjector faults(/*seed=*/1, {});
  faults.set_party_spec(Address::su(0), mute);

  RecoverableSessionConfig recov;
  recov.deadline_ticks = 1;  // expires after the first backoff wave
  recov.min_quorum = 4;      // but the silent SU can never arrive

  MessageBus bus;
  bus.set_fault_injector(&faults);
  try {
    run_recoverable(w, bus, recov, nullptr);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(RecoverySnapshot, SnapshotRestoreRoundTripsByteIdentically) {
  const WireWorld w = make_world(6, 3, 71);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  const std::size_t n = w.bids.size();

  AuctioneerSession session(w.config, n);
  Rng rng(1);
  for (std::size_t u = 0; u < n; ++u) {
    const SuClient client(u, w.config, ttp.su_keys());
    if (u == 2) continue;  // leave one SU missing: a mid-round snapshot
    ASSERT_EQ(session.try_ingest(client.location_envelope(w.locations[u], rng)),
              AuctioneerSession::IngestResult::kAccepted);
    ASSERT_EQ(session.try_ingest(client.bid_envelope(w.bids[u], rng)),
              AuctioneerSession::IngestResult::kAccepted);
  }
  session.replay_strike(2, "synthetic strike");

  // Pre-allocation snapshot round-trips.
  const Bytes mid = session.snapshot();
  AuctioneerSession restored_mid(w.config, n);
  restored_mid.restore_from(mid);
  EXPECT_EQ(restored_mid.snapshot(), mid);
  EXPECT_FALSE(restored_mid.allocation_done());

  // Post-allocation snapshot round-trips, and the restored session
  // continues to byte-identical charging and publication.
  RoundReport report;
  session.finalize_participants(report);
  Rng alloc_rng(2);
  session.run_allocation(alloc_rng);
  const Bytes full = session.snapshot();

  AuctioneerSession restored(w.config, n);
  restored.restore_from(full);
  EXPECT_EQ(restored.snapshot(), full);
  EXPECT_TRUE(restored.allocation_done());
  EXPECT_EQ(restored.participants(), session.participants());
  EXPECT_EQ(restored.awards(), session.awards());

  const auto queries = session.charge_query_envelopes();
  EXPECT_EQ(restored.charge_query_envelopes(), queries);
  TtpService service(ttp);
  for (const auto& q : queries) {
    const Bytes result = service.handle(q);
    session.ingest_charge_results(result);
    restored.ingest_charge_results(result);
  }
  ASSERT_TRUE(session.charging_complete());
  ASSERT_TRUE(restored.charging_complete());
  EXPECT_EQ(restored.winner_announcement(), session.winner_announcement());

  // Restoring over a session that already holds state is a typed
  // lifecycle error, and a damaged image is a typed protocol error.
  try {
    restored.restore_from(full);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kState);
  }
  Bytes damaged = full;
  damaged[20] ^= 0x40;  // inside SU 0's journaled location envelope
  AuctioneerSession fresh(w.config, n);
  try {
    fresh.restore_from(damaged);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(RecoveryBackoff, CappedScheduleIsPinned) {
  HardenedSessionConfig cfg;
  cfg.backoff_base_ticks = 3;
  cfg.max_backoff_ticks = 100;
  // Doubles until the cap, then plateaus: the regression pin for the
  // shift/overflow guard.
  const std::size_t expected[] = {3, 6, 12, 24, 48, 96, 100, 100, 100};
  for (std::size_t wave = 0; wave < std::size(expected); ++wave) {
    EXPECT_EQ(cfg.backoff_ticks(wave), expected[wave]) << "wave " << wave;
  }
  // Far past the word size: previously `base << wave` was undefined for
  // wave >= 64; now it is just the cap.
  EXPECT_EQ(cfg.backoff_ticks(63), 100u);
  EXPECT_EQ(cfg.backoff_ticks(64), 100u);
  EXPECT_EQ(cfg.backoff_ticks(200), 100u);

  cfg.backoff_base_ticks = 0;
  EXPECT_EQ(cfg.backoff_ticks(0), 0u);
  EXPECT_EQ(cfg.backoff_ticks(500), 0u);

  // The defaults also plateau instead of wrapping.
  HardenedSessionConfig defaults;
  EXPECT_EQ(defaults.backoff_ticks(100), defaults.max_backoff_ticks);
}

}  // namespace
}  // namespace lppa::proto

namespace lppa::sim {
namespace {

TEST(RecoveryMultiRound, SeededCrashScheduleRecoversEveryRound) {
  ScenarioConfig scfg;
  scfg.area_id = 3;
  scfg.fcc.rows = 30;
  scfg.fcc.cols = 30;
  scfg.fcc.num_channels = 12;
  scfg.num_users = 10;
  scfg.seed = 77;
  Scenario scenario(scfg);

  MultiRoundConfig cfg;
  cfg.rounds = 2;
  cfg.faults.enabled = true;
  cfg.faults.crashes.enabled = true;
  cfg.faults.crashes.crash_prob = 1.0;  // first checkpoint of each round
  cfg.faults.crashes.max_per_round = 1;

  const auto result = run_multi_round(scenario, cfg, 42);
  ASSERT_EQ(result.reports.size(), 2u);
  for (const auto& report : result.reports) {
    EXPECT_TRUE(report.completed) << report.summary();
    EXPECT_EQ(report.crash_recoveries, 1u) << report.summary();
    EXPECT_GT(report.journal_records, 0u);
    EXPECT_EQ(report.survivors.size(), 10u);
  }

  // The crash layer does not change outcomes: the same rounds without
  // crashes produce the same survivors (recovery is deterministic).
  Scenario scenario_b(scfg);
  cfg.faults.crashes.crash_prob = 0.0;
  const auto baseline = run_multi_round(scenario_b, cfg, 42);
  ASSERT_EQ(baseline.reports.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(result.reports[r].survivors, baseline.reports[r].survivors);
    EXPECT_EQ(baseline.reports[r].crash_recoveries, 0u);
  }
}

}  // namespace
}  // namespace lppa::sim
