#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "crypto/sealed_box.h"

namespace lppa::crypto {
namespace {

std::array<std::uint8_t, 16> block_from_hex(std::string_view hex) {
  const Bytes raw = from_hex(hex);
  std::array<std::uint8_t, 16> out{};
  std::copy(raw.begin(), raw.end(), out.begin());
  return out;
}

// FIPS 197 Appendix C.1.
TEST(Aes128, Fips197AppendixC1) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes128 aes(key);
  const auto ct = aes.encrypt_block(
      block_from_hex("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// FIPS 197 Appendix B worked example.
TEST(Aes128, Fips197AppendixB) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Aes128 aes(key);
  const auto ct = aes.encrypt_block(
      block_from_hex("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, RejectsWrongKeyLength) {
  EXPECT_THROW(Aes128(Bytes(15)), LppaError);
  EXPECT_THROW(Aes128(Bytes(32)), LppaError);
}

// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, counter block
// f0f1f2f3f4f5f6f7f8f9fafb || fcfdfeff.
TEST(Aes128Ctr, Sp80038aF51) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafb");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes ct = aes128_ctr_xor(key, nonce, 0xfcfdfeff, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(Aes128Ctr, IsItsOwnInverse) {
  Rng rng(1);
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes nonce(12, 0x42);
  Bytes msg(333);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
  const Bytes ct = aes128_ctr_xor(key, nonce, 7, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(aes128_ctr_xor(key, nonce, 7, ct), msg);
}

TEST(Aes128Ctr, NonBlockMultipleLengths) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes nonce(12, 1);
  for (std::size_t len : {1u, 15u, 16u, 17u, 100u}) {
    const Bytes msg(len, 0x5a);
    const Bytes ct = aes128_ctr_xor(key, nonce, 0, msg);
    ASSERT_EQ(ct.size(), len);
    EXPECT_EQ(aes128_ctr_xor(key, nonce, 0, ct), msg);
  }
}

TEST(Aes128Ctr, RejectsBadNonce) {
  const Bytes key(16), nonce(11);
  EXPECT_THROW(aes128_ctr_xor(key, nonce, 0, Bytes(4)), LppaError);
}

// ------------------------------------------------------- cipher agility

struct CipherAgilityTest : ::testing::Test {
  Rng rng{99};
  SecretKey gc = SecretKey::generate(rng);
  Bytes msg = {'s', 'e', 'c', 'r', 'e', 't'};
};

TEST_F(CipherAgilityTest, AesBoxRoundTrips) {
  const SealedBox box(gc, SealedCipher::kAes128Ctr);
  const auto sealed = box.seal(msg, rng);
  const auto opened = box.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(CipherAgilityTest, CiphersDoNotInteroperate) {
  const SealedBox chacha(gc, SealedCipher::kChaCha20);
  const SealedBox aes(gc, SealedCipher::kAes128Ctr);
  const auto sealed = chacha.seal(msg, rng);
  EXPECT_FALSE(aes.open(sealed).has_value());
  const auto sealed_aes = aes.seal(msg, rng);
  EXPECT_FALSE(chacha.open(sealed_aes).has_value());
}

TEST_F(CipherAgilityTest, AesBoxDetectsTampering) {
  const SealedBox box(gc, SealedCipher::kAes128Ctr);
  auto sealed = box.seal(msg, rng);
  sealed.ciphertext[0] ^= 1;
  EXPECT_FALSE(box.open(sealed).has_value());
}

}  // namespace
}  // namespace lppa::crypto
