#include "sim/cloaking.h"

#include <gtest/gtest.h>

namespace lppa::sim {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.area_id = 3;
  cfg.fcc.rows = 30;
  cfg.fcc.cols = 30;
  cfg.fcc.num_channels = 10;
  cfg.num_users = 20;
  cfg.lambda_m = 2000;
  cfg.seed = 3;
  return cfg;
}

TEST(CloakedConflict, DegeneratesToCellPredicateAtSizeOne) {
  const geo::Grid grid(30, 30, 750.0);
  // Two cells 2 apart (1500 m gap between closest edges... with size-1
  // blocks the gap is (2-1)*750 = 750 m) and lambda 1000 -> 2λ = 2000:
  // conflict.
  EXPECT_TRUE(cloaked_conflict(grid, {0, 0}, {0, 2}, 1, 1000));
  // 5 cells apart: gap (5-1)*750 = 3000 m > 2000: no conflict.
  EXPECT_FALSE(cloaked_conflict(grid, {0, 0}, {0, 5}, 1, 1000));
}

TEST(CloakedConflict, SameBlockAlwaysConflicts) {
  const geo::Grid grid(30, 30, 750.0);
  EXPECT_TRUE(cloaked_conflict(grid, {10, 10}, {10, 10}, 5, 1));
}

TEST(CloakedConflict, RequiresBothAxes) {
  const geo::Grid grid(30, 30, 750.0);
  // Adjacent on x, far on y.
  EXPECT_FALSE(cloaked_conflict(grid, {0, 0}, {20, 1}, 1, 1000));
}

TEST(CloakedConflict, LargerBlocksConflictMore) {
  const geo::Grid grid(30, 30, 750.0);
  const geo::Cell a{0, 0}, b{0, 5};
  // Small blocks: gap too large.  Big blocks: edges almost touch.
  EXPECT_FALSE(cloaked_conflict(grid, a, b, 1, 1000));
  EXPECT_TRUE(cloaked_conflict(grid, a, b, 5, 1000));
}

TEST(CloakedConflict, ConservativenessCoversTruth) {
  // Property: if the true positions conflict, the blocks must conflict.
  const ScenarioConfig cfg = small_config();
  const Scenario s(cfg);
  const auto& grid = s.dataset().grid();
  const auto& users = s.users();
  for (std::size_t cloak : {1u, 3u, 5u}) {
    for (std::size_t i = 0; i < users.size(); ++i) {
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        if (auction::locations_conflict(users[i].loc, users[j].loc,
                                        cfg.lambda_m)) {
          const geo::Cell bi{(users[i].cell.row / static_cast<int>(cloak)) *
                                 static_cast<int>(cloak),
                             (users[i].cell.col / static_cast<int>(cloak)) *
                                 static_cast<int>(cloak)};
          const geo::Cell bj{(users[j].cell.row / static_cast<int>(cloak)) *
                                 static_cast<int>(cloak),
                             (users[j].cell.col / static_cast<int>(cloak)) *
                                 static_cast<int>(cloak)};
          EXPECT_TRUE(cloaked_conflict(grid, bi, bj, cloak, cfg.lambda_m))
              << "cloak " << cloak << " users " << i << "," << j;
        }
      }
    }
  }
}

TEST(RunCloakingPoint, RejectsZeroCloak) {
  const Scenario s(small_config());
  EXPECT_THROW(run_cloaking_point(s, 0, 1), LppaError);
}

TEST(RunCloakingPoint, LargerCloaksGiveMorePrivacyLessReuse) {
  const Scenario s(small_config());
  const auto tiny = run_cloaking_point(s, 1, 5);
  const auto big = run_cloaking_point(s, 10, 5);
  EXPECT_GE(big.privacy.mean_possible_cells,
            tiny.privacy.mean_possible_cells);
  EXPECT_GE(big.conflict_inflation, tiny.conflict_inflation);
  EXPECT_LE(big.revenue_ratio, tiny.revenue_ratio + 0.05);
}

TEST(RunCloakingPoint, NoCloakMatchesExactAuction) {
  const Scenario s(small_config());
  const auto point = run_cloaking_point(s, 1, 5);
  // A 1x1 "cloak" is slightly conservative (cell granularity) but the
  // revenue must be essentially the exact auction's.
  EXPECT_GT(point.revenue_ratio, 0.9);
}

TEST(RunCloakingPoint, PrivacyCappedByCloakArea) {
  const Scenario s(small_config());
  const auto point = run_cloaking_point(s, 5, 5);
  EXPECT_LE(point.privacy.mean_possible_cells, 25.0);
}

TEST(RunCloakingPoint, Deterministic) {
  const Scenario s(small_config());
  const auto a = run_cloaking_point(s, 5, 9);
  const auto b = run_cloaking_point(s, 5, 9);
  EXPECT_EQ(a.revenue_ratio, b.revenue_ratio);
  EXPECT_EQ(a.privacy.mean_possible_cells, b.privacy.mean_possible_cells);
}

}  // namespace
}  // namespace lppa::sim
