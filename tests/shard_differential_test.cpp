// Differential suite for the geo-sharded execution path: for EVERY shard
// count and thread count, the sharded auction must produce byte-identical
// conflict graphs, awards, charges, and winner announcements to the
// single-partition path — including under adversarial placements (SUs on
// tile borders, everyone in one tile, tiles narrower than the 2λ halo,
// grid corners) and across snapshot/restore reconfigurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/churn_state.h"
#include "core/lppa_auction.h"
#include "core/shard_conflict.h"
#include "core/sharded_bid_table.h"
#include "obs/metrics.h"
#include "proto/session.h"
#include "shard/shard_plan.h"

namespace lppa {
namespace {

struct World {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
};

World random_world(std::size_t n, std::size_t k, std::uint64_t seed,
                   std::uint64_t side = 5000) {
  Rng rng(seed);
  World w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(side), rng.below(side)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  return w;
}

core::LppaConfig base_config(std::size_t k, std::uint64_t lambda = 100,
                             int coord_width = 14) {
  core::LppaConfig cfg;
  cfg.num_channels = k;
  cfg.lambda = lambda;
  cfg.coord_width = coord_width;
  cfg.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  return cfg;
}

/// Runs the full auction and returns the outcome; the Rng seed is fixed
/// so any divergence between configurations is the configuration's.
core::LppaOutcome run_auction(const World& w, const core::LppaConfig& cfg,
                              std::uint64_t seed) {
  core::LppaAuction engine(cfg, /*ttp_seed=*/7);
  Rng rng(seed);
  return engine.run(w.locations, w.bids, rng);
}

void expect_same_outcome(const core::LppaOutcome& a,
                         const core::LppaOutcome& b) {
  ASSERT_EQ(a.outcome.awards.size(), b.outcome.awards.size());
  for (std::size_t i = 0; i < a.outcome.awards.size(); ++i) {
    const auto& x = a.outcome.awards[i];
    const auto& y = b.outcome.awards[i];
    EXPECT_EQ(x.user, y.user);
    EXPECT_EQ(x.channel, y.channel);
    EXPECT_EQ(x.charge, y.charge);
    EXPECT_EQ(x.valid, y.valid);
  }
  EXPECT_EQ(a.view.conflicts, b.view.conflicts);
  EXPECT_EQ(a.view.awards, b.view.awards);
  EXPECT_EQ(a.manipulations_detected, b.manipulations_detected);
}

// --- ShardPlan geometry --------------------------------------------------

TEST(ShardPlan, GridFactorisationIsNearSquare) {
  using shard::ShardPlan;
  EXPECT_EQ(ShardPlan::make(14, 100, 1).tiles_x(), 1u);
  const ShardPlan p2 = ShardPlan::make(14, 100, 2);
  EXPECT_EQ(p2.tiles_x(), 1u);
  EXPECT_EQ(p2.tiles_y(), 2u);
  const ShardPlan p4 = ShardPlan::make(14, 100, 4);
  EXPECT_EQ(p4.tiles_x(), 2u);
  EXPECT_EQ(p4.tiles_y(), 2u);
  const ShardPlan p9 = ShardPlan::make(14, 100, 9);
  EXPECT_EQ(p9.tiles_x(), 3u);
  EXPECT_EQ(p9.tiles_y(), 3u);
  const ShardPlan p12 = ShardPlan::make(14, 100, 12);
  EXPECT_EQ(p12.tiles_x(), 3u);
  EXPECT_EQ(p12.tiles_y(), 4u);
  EXPECT_THROW(ShardPlan::make(14, 100, 0), LppaError);
  EXPECT_THROW(ShardPlan::make(0, 100, 1), LppaError);
  // More strips than coordinate columns cannot tile the square.
  EXPECT_THROW(ShardPlan::make(1, 1, 64), LppaError);
}

TEST(ShardPlan, TilesPartitionTheField) {
  const shard::ShardPlan plan = shard::ShardPlan::make(8, 10, 6);
  ASSERT_EQ(plan.num_shards(), 6u);
  // Every location maps to exactly one tile whose bounds contain it.
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const auction::SuLocation loc{rng.below(256), rng.below(256)};
    const std::uint32_t t = plan.tile_of(loc);
    ASSERT_LT(t, plan.num_shards());
    const auto b = plan.bounds(t);
    EXPECT_GE(loc.x, b.x_lo);
    EXPECT_LE(loc.x, b.x_hi);
    EXPECT_GE(loc.y, b.y_lo);
    EXPECT_LE(loc.y, b.y_hi);
  }
  // Tile bounds cover the square without overlap: total area matches.
  std::uint64_t area = 0;
  for (std::uint32_t t = 0; t < plan.num_shards(); ++t) {
    const auto b = plan.bounds(t);
    area += (b.x_hi - b.x_lo + 1) * (b.y_hi - b.y_lo + 1);
  }
  EXPECT_EQ(area, 256u * 256u);
}

TEST(ShardPlan, AssignmentMatchesOnBoundaryAndCoversEveryone) {
  const shard::ShardPlan plan = shard::ShardPlan::make(14, 100, 4);
  const World w = random_world(200, 1, 17, /*side=*/16000);
  const shard::ShardAssignment a = plan.assign(w.locations);
  ASSERT_EQ(a.shard_of.size(), w.locations.size());
  std::size_t members_total = 0;
  for (std::size_t s = 0; s < a.num_shards; ++s) {
    members_total += a.members[s].size();
    EXPECT_TRUE(std::is_sorted(a.members[s].begin(), a.members[s].end()));
    EXPECT_TRUE(std::is_sorted(a.halo[s].begin(), a.halo[s].end()));
    for (const std::uint32_t u : a.members[s]) {
      EXPECT_EQ(a.shard_of[u], s);
    }
    for (const std::uint32_t u : a.halo[s]) {
      EXPECT_NE(a.shard_of[u], s);  // halos hold only foreign SUs
    }
  }
  EXPECT_EQ(members_total, w.locations.size());
  // boundary_sus counts exactly the SUs the predicate flags.
  std::size_t boundary = 0;
  for (const auto& loc : w.locations) {
    if (plan.on_boundary(loc)) ++boundary;
  }
  EXPECT_EQ(a.boundary_sus, boundary);
  EXPECT_GT(a.halo_entries(), 0u);
}

// --- Conflict graph differential ----------------------------------------

TEST(ShardConflict, MatchesGlobalBuildAcrossShardAndThreadCounts) {
  const core::LppaConfig cfg = base_config(1);
  Rng key_rng(42);
  const crypto::SecretKey g0 = crypto::SecretKey::generate(key_rng);
  const core::PpbsLocation proto(g0, cfg.coord_width, cfg.lambda, true);
  const World w = random_world(120, 1, 23, /*side=*/16000);
  Rng rng(9);
  std::vector<core::LocationSubmission> subs;
  for (const auto& loc : w.locations) subs.push_back(proto.submit(loc, rng));
  const auto reference = core::PpbsLocation::build_conflict_graph(subs, 1);
  for (const std::size_t shards : {1u, 2u, 4u, 9u}) {
    const auto plan =
        shard::ShardPlan::make(cfg.coord_width, cfg.lambda, shards);
    const auto assignment = plan.assign(w.locations);
    for (const std::size_t threads : {1u, 3u}) {
      core::ShardConflictStats stats;
      const auto sharded = core::build_conflict_graph_sharded(
          subs, assignment, threads, nullptr, &stats);
      EXPECT_EQ(sharded, reference)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(stats.halo_edges + stats.local_edges, reference.edge_count());
      if (shards == 1) {
        EXPECT_EQ(stats.halo_entries, 0u);
        EXPECT_EQ(stats.halo_edges, 0u);
      }
      EXPECT_GT(stats.peak_index_bytes, 0u);
    }
  }
}

// --- End-to-end byte identity --------------------------------------------

TEST(ShardDifferential, AuctionOutcomeIdenticalForEveryShardCount) {
  const World w = random_world(60, 3, 51, /*side=*/16000);
  const auto reference = run_auction(w, base_config(3), 77);
  EXPECT_FALSE(reference.outcome.awards.empty());
  for (const std::size_t shards : {2u, 4u, 9u}) {
    for (const std::size_t threads : {1u, 3u}) {
      core::LppaConfig cfg = base_config(3);
      cfg.num_shards = shards;
      cfg.num_threads = threads;
      const auto sharded = run_auction(w, cfg, 77);
      expect_same_outcome(sharded, reference);
    }
  }
}

TEST(ShardDifferential, BothArgmaxStrategiesStayIdenticalWhenSharded) {
  const World w = random_world(40, 2, 53, /*side=*/16000);
  const auto reference = run_auction(w, base_config(2), 13);
  for (const auto strategy : {core::ArgmaxStrategy::kSortedColumns,
                              core::ArgmaxStrategy::kTournamentScan}) {
    core::LppaConfig cfg = base_config(2);
    cfg.num_shards = 4;
    cfg.argmax_strategy = strategy;
    expect_same_outcome(run_auction(w, cfg, 13), reference);
  }
}

TEST(ShardDifferential, AdversarialPlacements) {
  // Each placement stresses one geometric corner of the halo logic.
  // PPBS requires every loc + 2λ to fit coord_width, so coordinates stay
  // within [0, 2047 - 2λ] of the 2048-wide field; the 2x2 grid's tile
  // border sits at x,y = 1023/1024.
  const std::size_t k = 2;
  const int width = 11;  // 2048-wide field
  struct Placement {
    const char* name;
    std::uint64_t lambda;
    std::vector<auction::SuLocation> locations;
  };
  std::vector<Placement> placements;

  // (a) SUs sitting exactly ON tile borders of the 2x2 grid and at the
  // shared centre corner.
  placements.push_back({"tile_borders",
                        20,
                        {{1023, 100},
                         {1024, 100},
                         {1023, 1900},
                         {1024, 1901},
                         {100, 1023},
                         {100, 1024},
                         {1023, 1023},
                         {1024, 1024},
                         {1023, 1024},
                         {1024, 1023}}});
  // (b) Everyone crammed into one tile: all other shards stay empty.
  placements.push_back(
      {"one_tile", 20, {{10, 10}, {12, 11}, {30, 40}, {5, 5}, {60, 60}}});
  // (c) λ so large that 2λ = 700 exceeds the 3x3 grid's 683-wide tiles —
  // every SU is a boundary SU and halos cover whole neighbouring tiles.
  placements.push_back({"narrow_tiles",
                        350,
                        {{100, 100},
                         {400, 380},
                         {600, 610},
                         {900, 880},
                         {1200, 1300},
                         {20, 1000}}});
  // (d) The corners of the PPBS-admissible region plus the grid centre.
  placements.push_back({"grid_corners",
                        50,
                        {{0, 0},
                         {1947, 0},
                         {0, 1947},
                         {1947, 1947},
                         {1023, 1023},
                         {1024, 1024}}});

  for (const auto& p : placements) {
    World w;
    w.locations = p.locations;
    Rng rng(99);
    for (std::size_t i = 0; i < w.locations.size(); ++i) {
      auction::BidVector bv(k);
      for (auto& b : bv) b = rng.below(16);
      w.bids.push_back(bv);
    }
    core::LppaConfig cfg = base_config(k, p.lambda, width);
    const auto reference = run_auction(w, cfg, 31);
    for (const std::size_t shards : {2u, 4u, 9u}) {
      core::LppaConfig sharded_cfg = cfg;
      sharded_cfg.num_shards = shards;
      sharded_cfg.num_threads = 3;
      const auto sharded = run_auction(w, sharded_cfg, 31);
      expect_same_outcome(sharded, reference);
      if (testing::Test::HasFailure()) {
        FAIL() << "placement " << p.name << " shards=" << shards;
      }
    }
  }
}

// --- ShardedBidTable vs EncryptedBidTable --------------------------------

TEST(ShardedBidTable, AnswersMatchSingleTableUnderRandomRemovals) {
  const std::size_t n = 30, k = 3;
  const World w = random_world(n, k, 61);
  core::TrustedThirdParty ttp(base_config(k).bid, 5);
  const core::SuKeyBundle keys = ttp.su_keys();
  const core::BidSubmitter submitter(ttp.config(), keys.gb_master, keys.gc);
  Rng rng(8);
  std::vector<core::BidSubmission> subs;
  for (const auto& bv : w.bids) subs.push_back(submitter.submit(bv, rng));

  for (const std::size_t shards : {1u, 3u, 7u}) {
    core::EncryptedBidTable single(subs, k);
    core::ShardedBidTable sharded(
        subs, k, core::ShardedBidTable::contiguous_shards(n, shards), shards);
    EXPECT_EQ(sharded.num_shards(), shards);
    Rng removals(1000 + shards);
    while (!single.empty()) {
      for (std::size_t r = 0; r < k; ++r) {
        const auto a = single.argmax_in_column(r);
        const auto b = sharded.argmax_in_column(r);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) EXPECT_EQ(*a, *b);
      }
      // Remove a random cell or user on both tables.
      const std::size_t u = removals.below(n);
      if (removals.below(4) == 0) {
        single.remove_user(u);
        sharded.remove_user(u);
      } else {
        const std::size_t r = removals.below(k);
        single.remove(u, r);
        sharded.remove(u, r);
      }
      EXPECT_EQ(single.empty(), sharded.empty());
    }
    EXPECT_TRUE(sharded.empty());
  }
}

TEST(ShardedBidTable, BoundarySuRemovalLeavesNoStaleHaloState) {
  // Adversarial churn removal: the departing SU sits right on a tile
  // border, so its x-range digests live in a NEIGHBOUR tile's halo index
  // and its row could win a foreign shard's local argmax.  After
  // remove_su, nothing of it may linger: no stale halo conflict edge, no
  // stale halo winner in the merged argmax, and the shard counters of a
  // fresh rebuild must agree with the maintained assignment.
  const std::size_t k = 2;
  core::LppaConfig cfg = base_config(k, /*lambda=*/100, /*coord_width=*/14);
  cfg.num_shards = 4;  // 2x2 tiles over [0, 16384)^2, borders at 8192

  // SU 0: boundary SU (x = 8190, within 2λ of the x border), top bidder
  // on channel 0.  SU 1: across the border in the east tile, conflicting
  // with SU 0.  SUs 2 and 3: interior of other tiles, no conflicts.
  const std::vector<auction::SuLocation> locations = {
      {8190, 4000}, {8290, 4040}, {2000, 2000}, {12000, 12000}};
  const std::vector<auction::BidVector> bids = {
      {15, 1}, {9, 7}, {5, 3}, {4, 2}};
  const std::size_t n = locations.size();

  core::TrustedThirdParty ttp(cfg.bid, 5);
  const core::SuKeyBundle keys = ttp.su_keys();
  const core::PpbsLocation location_protocol(keys.g0, cfg.coord_width,
                                             cfg.lambda,
                                             cfg.pad_location_ranges);
  const core::BidSubmitter submitter(ttp.config(), keys.gb_master, keys.gc);
  Rng rng(19);
  std::vector<core::LocationSubmission> loc_subs;
  std::vector<core::BidSubmission> bid_subs;
  for (std::size_t u = 0; u < n; ++u) {
    loc_subs.push_back(location_protocol.submit(locations[u], rng));
    bid_subs.push_back(submitter.submit(bids[u], rng));
  }

  const shard::ShardPlan plan =
      shard::ShardPlan::make(cfg.coord_width, cfg.lambda, cfg.num_shards);
  ASSERT_TRUE(plan.on_boundary(locations[0]));
  ASSERT_NE(plan.tile_of(locations[0]), plan.tile_of(locations[1]));

  obs::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  core::ChurnState state(cfg, locations, loc_subs, bid_subs,
                         std::vector<bool>(n, true));
  ASSERT_TRUE(state.graph().conflicts(0, 1));
  ASSERT_EQ(state.table().argmax_in_column(0), auction::UserId{0});

  // Departure of the boundary SU.
  state.remove_su(0);
  EXPECT_FALSE(state.graph().conflicts(0, 1));
  EXPECT_TRUE(state.graph() == state.rebuild_conflicts());
  EXPECT_TRUE(state.assignment() == state.rebuild_assignment());
  EXPECT_EQ(state.serialize_table(), state.rebuild_table().serialize());
  // No stale halo winner: the east tile's merged argmax moves on.
  EXPECT_EQ(state.table().argmax_in_column(0), auction::UserId{1});
  EXPECT_EQ(state.rebuild_table().argmax_in_column(0), auction::UserId{1});

  // A fresh sharded build over the post-departure roster must report
  // counters consistent with the maintained assignment: every halo index
  // entry accounted for by a live halo SU's x-range digests, every edge
  // classified local or halo.
  obs::MetricsRegistry rebuilt_metrics;
  const auction::ConflictGraph rebuilt = core::build_conflict_graph_sharded(
      state.locations(), state.assignment(), /*num_threads=*/1,
      &rebuilt_metrics);
  std::size_t expected_halo_entries = 0;
  for (const auto& halo : state.assignment().halo) {
    for (const std::uint32_t j : halo) {
      expected_halo_entries += state.locations()[j].x_range.size();
    }
  }
  EXPECT_EQ(rebuilt_metrics.counter("shard.halo_index_entries").value(),
            expected_halo_entries);
  EXPECT_EQ(rebuilt_metrics.counter("shard.local_edges").value() +
                rebuilt_metrics.counter("shard.halo_edges").value(),
            rebuilt.edge_count());

  // Arrival into the freed slot near the old border spot: if any of SU
  // 0's digests had survived in a halo index, the probe would resurrect
  // a phantom edge and diverge from the rebuild.
  Rng arrival_rng(23);
  const auction::SuLocation back = {8200, 4010};
  state.add_su(0, back, location_protocol.submit(back, arrival_rng),
               submitter.submit({6, 6}, arrival_rng));
  EXPECT_TRUE(state.graph().conflicts(0, 1));
  EXPECT_TRUE(state.graph() == state.rebuild_conflicts());
  EXPECT_TRUE(state.assignment() == state.rebuild_assignment());
  EXPECT_EQ(state.serialize_table(), state.rebuild_table().serialize());

  // Digest bookkeeping is halo-symmetric: the arrival inserted exactly
  // as many (digest, owner) pairs as its later departure erases.
  const std::uint64_t inserted =
      metrics.counter("churn.digests_inserted").value();
  const std::uint64_t erased_before =
      metrics.counter("churn.digests_erased").value();
  state.remove_su(0);
  const std::uint64_t arrival_pairs =
      metrics.counter("churn.digests_erased").value() - erased_before;
  EXPECT_GT(arrival_pairs, 0u);
  // The only link so far was that arrival, so total insertions == its
  // erasure count (home + halo copies both ways).
  EXPECT_EQ(arrival_pairs, inserted);
  EXPECT_TRUE(state.graph() == state.rebuild_conflicts());
}

TEST(ShardedBidTable, SerializesTheGlobalImageAndRestoresResharded) {
  const std::size_t n = 12, k = 2;
  const World w = random_world(n, k, 67);
  core::TrustedThirdParty ttp(base_config(k).bid, 5);
  const core::SuKeyBundle keys = ttp.su_keys();
  const core::BidSubmitter submitter(ttp.config(), keys.gb_master, keys.gc);
  Rng rng(4);
  std::vector<core::BidSubmission> subs;
  for (const auto& bv : w.bids) subs.push_back(submitter.submit(bv, rng));

  core::EncryptedBidTable single(subs, k);
  core::ShardedBidTable sharded(
      subs, k, core::ShardedBidTable::contiguous_shards(n, 4), 4);
  // Identical wire images before and after identical removals.
  EXPECT_EQ(sharded.serialize(), single.serialize());
  single.remove(3, 1);
  sharded.remove(3, 1);
  single.remove_user(7);
  sharded.remove_user(7);
  const Bytes image = single.serialize();
  EXPECT_EQ(sharded.serialize(), image);

  // Restore the unsharded image into a sharded table (and with a
  // different shard count than the writer used): answers must continue
  // exactly where the snapshot left off.
  for (const std::size_t shards : {1u, 2u, 5u}) {
    auto restored = core::ShardedBidTable::restore(
        core::EncryptedBidTable::deserialize(image),
        core::ShardedBidTable::contiguous_shards(n, shards), shards);
    EXPECT_EQ(restored.serialize(), image);
    for (std::size_t r = 0; r < k; ++r) {
      EXPECT_EQ(restored.argmax_in_column(r), single.argmax_in_column(r));
    }
    EXPECT_FALSE(restored.has(3, 1));
    EXPECT_FALSE(restored.has(7, 0));
  }

  // A shard map that does not fit the image is a typed protocol error.
  try {
    core::ShardedBidTable::restore(
        core::EncryptedBidTable::deserialize(image),
        core::ShardedBidTable::contiguous_shards(n + 1, 2), 2);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
  try {
    auto bad_map = core::ShardedBidTable::contiguous_shards(n, 4);
    core::ShardedBidTable::restore(core::EncryptedBidTable::deserialize(image),
                                   std::move(bad_map), /*num_shards=*/2);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
  // Restore requires an owning table, not one referencing a live vector.
  EXPECT_THROW(core::ShardedBidTable::restore(
                   core::EncryptedBidTable(subs, k),
                   core::ShardedBidTable::contiguous_shards(n, 2), 2),
               LppaError);
}

// --- Session snapshot interop (PR 3 recovery compatibility) --------------

TEST(ShardSessionInterop, SnapshotsInterchangeAcrossShardReconfiguration) {
  const std::size_t n = 8, k = 3;
  const World w = random_world(n, k, 71);
  core::LppaConfig unsharded_cfg = base_config(k);
  core::LppaConfig sharded_cfg = unsharded_cfg;
  sharded_cfg.num_shards = 4;

  core::TrustedThirdParty ttp(unsharded_cfg.bid, 9);

  auto run_to_allocation = [&](const core::LppaConfig& cfg) {
    auto session = std::make_unique<proto::AuctioneerSession>(cfg, n);
    Rng rng(1);
    for (std::size_t u = 0; u < n; ++u) {
      const proto::SuClient client(u, cfg, ttp.su_keys());
      session->ingest(client.location_envelope(w.locations[u], rng));
      session->ingest(client.bid_envelope(w.bids[u], rng));
    }
    Rng alloc_rng(2);
    session->run_allocation(alloc_rng);
    return session;
  };

  const auto unsharded = run_to_allocation(unsharded_cfg);
  const auto sharded = run_to_allocation(sharded_cfg);

  // Same awards, same snapshot bytes: the sharded session's image IS the
  // unsharded one's.
  EXPECT_EQ(sharded->awards(), unsharded->awards());
  const Bytes snap = unsharded->snapshot();
  EXPECT_EQ(sharded->snapshot(), snap);

  // Restore the image under BOTH configurations and finish the round
  // through the TTP on each: byte-identical announcements throughout.
  proto::AuctioneerSession restored_sharded(sharded_cfg, n);
  restored_sharded.restore_from(snap);
  proto::AuctioneerSession restored_unsharded(unsharded_cfg, n);
  restored_unsharded.restore_from(snap);
  EXPECT_EQ(restored_sharded.snapshot(), snap);
  EXPECT_EQ(restored_unsharded.snapshot(), snap);

  proto::TtpService service(ttp);
  std::vector<proto::AuctioneerSession*> sessions = {
      unsharded.get(), sharded.get(), &restored_sharded, &restored_unsharded};
  const auto queries = unsharded->charge_query_envelopes();
  for (proto::AuctioneerSession* s : sessions) {
    EXPECT_EQ(s->charge_query_envelopes(), queries);
  }
  for (const auto& q : queries) {
    const Bytes result = service.handle(q);
    for (proto::AuctioneerSession* s : sessions) {
      s->ingest_charge_results(result);
    }
  }
  const Bytes announcement = unsharded->winner_announcement();
  for (proto::AuctioneerSession* s : sessions) {
    ASSERT_TRUE(s->charging_complete());
    EXPECT_EQ(s->winner_announcement(), announcement);
  }
}

}  // namespace
}  // namespace lppa
