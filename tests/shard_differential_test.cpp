// Differential suite for the geo-sharded execution path: for EVERY shard
// count and thread count, the sharded auction must produce byte-identical
// conflict graphs, awards, charges, and winner announcements to the
// single-partition path — including under adversarial placements (SUs on
// tile borders, everyone in one tile, tiles narrower than the 2λ halo,
// grid corners) and across snapshot/restore reconfigurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/lppa_auction.h"
#include "core/shard_conflict.h"
#include "core/sharded_bid_table.h"
#include "proto/session.h"
#include "shard/shard_plan.h"

namespace lppa {
namespace {

struct World {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
};

World random_world(std::size_t n, std::size_t k, std::uint64_t seed,
                   std::uint64_t side = 5000) {
  Rng rng(seed);
  World w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(side), rng.below(side)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  return w;
}

core::LppaConfig base_config(std::size_t k, std::uint64_t lambda = 100,
                             int coord_width = 14) {
  core::LppaConfig cfg;
  cfg.num_channels = k;
  cfg.lambda = lambda;
  cfg.coord_width = coord_width;
  cfg.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  return cfg;
}

/// Runs the full auction and returns the outcome; the Rng seed is fixed
/// so any divergence between configurations is the configuration's.
core::LppaOutcome run_auction(const World& w, const core::LppaConfig& cfg,
                              std::uint64_t seed) {
  core::LppaAuction engine(cfg, /*ttp_seed=*/7);
  Rng rng(seed);
  return engine.run(w.locations, w.bids, rng);
}

void expect_same_outcome(const core::LppaOutcome& a,
                         const core::LppaOutcome& b) {
  ASSERT_EQ(a.outcome.awards.size(), b.outcome.awards.size());
  for (std::size_t i = 0; i < a.outcome.awards.size(); ++i) {
    const auto& x = a.outcome.awards[i];
    const auto& y = b.outcome.awards[i];
    EXPECT_EQ(x.user, y.user);
    EXPECT_EQ(x.channel, y.channel);
    EXPECT_EQ(x.charge, y.charge);
    EXPECT_EQ(x.valid, y.valid);
  }
  EXPECT_EQ(a.view.conflicts, b.view.conflicts);
  EXPECT_EQ(a.view.awards, b.view.awards);
  EXPECT_EQ(a.manipulations_detected, b.manipulations_detected);
}

// --- ShardPlan geometry --------------------------------------------------

TEST(ShardPlan, GridFactorisationIsNearSquare) {
  using shard::ShardPlan;
  EXPECT_EQ(ShardPlan::make(14, 100, 1).tiles_x(), 1u);
  const ShardPlan p2 = ShardPlan::make(14, 100, 2);
  EXPECT_EQ(p2.tiles_x(), 1u);
  EXPECT_EQ(p2.tiles_y(), 2u);
  const ShardPlan p4 = ShardPlan::make(14, 100, 4);
  EXPECT_EQ(p4.tiles_x(), 2u);
  EXPECT_EQ(p4.tiles_y(), 2u);
  const ShardPlan p9 = ShardPlan::make(14, 100, 9);
  EXPECT_EQ(p9.tiles_x(), 3u);
  EXPECT_EQ(p9.tiles_y(), 3u);
  const ShardPlan p12 = ShardPlan::make(14, 100, 12);
  EXPECT_EQ(p12.tiles_x(), 3u);
  EXPECT_EQ(p12.tiles_y(), 4u);
  EXPECT_THROW(ShardPlan::make(14, 100, 0), LppaError);
  EXPECT_THROW(ShardPlan::make(0, 100, 1), LppaError);
  // More strips than coordinate columns cannot tile the square.
  EXPECT_THROW(ShardPlan::make(1, 1, 64), LppaError);
}

TEST(ShardPlan, TilesPartitionTheField) {
  const shard::ShardPlan plan = shard::ShardPlan::make(8, 10, 6);
  ASSERT_EQ(plan.num_shards(), 6u);
  // Every location maps to exactly one tile whose bounds contain it.
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const auction::SuLocation loc{rng.below(256), rng.below(256)};
    const std::uint32_t t = plan.tile_of(loc);
    ASSERT_LT(t, plan.num_shards());
    const auto b = plan.bounds(t);
    EXPECT_GE(loc.x, b.x_lo);
    EXPECT_LE(loc.x, b.x_hi);
    EXPECT_GE(loc.y, b.y_lo);
    EXPECT_LE(loc.y, b.y_hi);
  }
  // Tile bounds cover the square without overlap: total area matches.
  std::uint64_t area = 0;
  for (std::uint32_t t = 0; t < plan.num_shards(); ++t) {
    const auto b = plan.bounds(t);
    area += (b.x_hi - b.x_lo + 1) * (b.y_hi - b.y_lo + 1);
  }
  EXPECT_EQ(area, 256u * 256u);
}

TEST(ShardPlan, AssignmentMatchesOnBoundaryAndCoversEveryone) {
  const shard::ShardPlan plan = shard::ShardPlan::make(14, 100, 4);
  const World w = random_world(200, 1, 17, /*side=*/16000);
  const shard::ShardAssignment a = plan.assign(w.locations);
  ASSERT_EQ(a.shard_of.size(), w.locations.size());
  std::size_t members_total = 0;
  for (std::size_t s = 0; s < a.num_shards; ++s) {
    members_total += a.members[s].size();
    EXPECT_TRUE(std::is_sorted(a.members[s].begin(), a.members[s].end()));
    EXPECT_TRUE(std::is_sorted(a.halo[s].begin(), a.halo[s].end()));
    for (const std::uint32_t u : a.members[s]) {
      EXPECT_EQ(a.shard_of[u], s);
    }
    for (const std::uint32_t u : a.halo[s]) {
      EXPECT_NE(a.shard_of[u], s);  // halos hold only foreign SUs
    }
  }
  EXPECT_EQ(members_total, w.locations.size());
  // boundary_sus counts exactly the SUs the predicate flags.
  std::size_t boundary = 0;
  for (const auto& loc : w.locations) {
    if (plan.on_boundary(loc)) ++boundary;
  }
  EXPECT_EQ(a.boundary_sus, boundary);
  EXPECT_GT(a.halo_entries(), 0u);
}

// --- Conflict graph differential ----------------------------------------

TEST(ShardConflict, MatchesGlobalBuildAcrossShardAndThreadCounts) {
  const core::LppaConfig cfg = base_config(1);
  Rng key_rng(42);
  const crypto::SecretKey g0 = crypto::SecretKey::generate(key_rng);
  const core::PpbsLocation proto(g0, cfg.coord_width, cfg.lambda, true);
  const World w = random_world(120, 1, 23, /*side=*/16000);
  Rng rng(9);
  std::vector<core::LocationSubmission> subs;
  for (const auto& loc : w.locations) subs.push_back(proto.submit(loc, rng));
  const auto reference = core::PpbsLocation::build_conflict_graph(subs, 1);
  for (const std::size_t shards : {1u, 2u, 4u, 9u}) {
    const auto plan =
        shard::ShardPlan::make(cfg.coord_width, cfg.lambda, shards);
    const auto assignment = plan.assign(w.locations);
    for (const std::size_t threads : {1u, 3u}) {
      core::ShardConflictStats stats;
      const auto sharded = core::build_conflict_graph_sharded(
          subs, assignment, threads, nullptr, &stats);
      EXPECT_EQ(sharded, reference)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(stats.halo_edges + stats.local_edges, reference.edge_count());
      if (shards == 1) {
        EXPECT_EQ(stats.halo_entries, 0u);
        EXPECT_EQ(stats.halo_edges, 0u);
      }
      EXPECT_GT(stats.peak_index_bytes, 0u);
    }
  }
}

// --- End-to-end byte identity --------------------------------------------

TEST(ShardDifferential, AuctionOutcomeIdenticalForEveryShardCount) {
  const World w = random_world(60, 3, 51, /*side=*/16000);
  const auto reference = run_auction(w, base_config(3), 77);
  EXPECT_FALSE(reference.outcome.awards.empty());
  for (const std::size_t shards : {2u, 4u, 9u}) {
    for (const std::size_t threads : {1u, 3u}) {
      core::LppaConfig cfg = base_config(3);
      cfg.num_shards = shards;
      cfg.num_threads = threads;
      const auto sharded = run_auction(w, cfg, 77);
      expect_same_outcome(sharded, reference);
    }
  }
}

TEST(ShardDifferential, BothArgmaxStrategiesStayIdenticalWhenSharded) {
  const World w = random_world(40, 2, 53, /*side=*/16000);
  const auto reference = run_auction(w, base_config(2), 13);
  for (const auto strategy : {core::ArgmaxStrategy::kSortedColumns,
                              core::ArgmaxStrategy::kTournamentScan}) {
    core::LppaConfig cfg = base_config(2);
    cfg.num_shards = 4;
    cfg.argmax_strategy = strategy;
    expect_same_outcome(run_auction(w, cfg, 13), reference);
  }
}

TEST(ShardDifferential, AdversarialPlacements) {
  // Each placement stresses one geometric corner of the halo logic.
  // PPBS requires every loc + 2λ to fit coord_width, so coordinates stay
  // within [0, 2047 - 2λ] of the 2048-wide field; the 2x2 grid's tile
  // border sits at x,y = 1023/1024.
  const std::size_t k = 2;
  const int width = 11;  // 2048-wide field
  struct Placement {
    const char* name;
    std::uint64_t lambda;
    std::vector<auction::SuLocation> locations;
  };
  std::vector<Placement> placements;

  // (a) SUs sitting exactly ON tile borders of the 2x2 grid and at the
  // shared centre corner.
  placements.push_back({"tile_borders",
                        20,
                        {{1023, 100},
                         {1024, 100},
                         {1023, 1900},
                         {1024, 1901},
                         {100, 1023},
                         {100, 1024},
                         {1023, 1023},
                         {1024, 1024},
                         {1023, 1024},
                         {1024, 1023}}});
  // (b) Everyone crammed into one tile: all other shards stay empty.
  placements.push_back(
      {"one_tile", 20, {{10, 10}, {12, 11}, {30, 40}, {5, 5}, {60, 60}}});
  // (c) λ so large that 2λ = 700 exceeds the 3x3 grid's 683-wide tiles —
  // every SU is a boundary SU and halos cover whole neighbouring tiles.
  placements.push_back({"narrow_tiles",
                        350,
                        {{100, 100},
                         {400, 380},
                         {600, 610},
                         {900, 880},
                         {1200, 1300},
                         {20, 1000}}});
  // (d) The corners of the PPBS-admissible region plus the grid centre.
  placements.push_back({"grid_corners",
                        50,
                        {{0, 0},
                         {1947, 0},
                         {0, 1947},
                         {1947, 1947},
                         {1023, 1023},
                         {1024, 1024}}});

  for (const auto& p : placements) {
    World w;
    w.locations = p.locations;
    Rng rng(99);
    for (std::size_t i = 0; i < w.locations.size(); ++i) {
      auction::BidVector bv(k);
      for (auto& b : bv) b = rng.below(16);
      w.bids.push_back(bv);
    }
    core::LppaConfig cfg = base_config(k, p.lambda, width);
    const auto reference = run_auction(w, cfg, 31);
    for (const std::size_t shards : {2u, 4u, 9u}) {
      core::LppaConfig sharded_cfg = cfg;
      sharded_cfg.num_shards = shards;
      sharded_cfg.num_threads = 3;
      const auto sharded = run_auction(w, sharded_cfg, 31);
      expect_same_outcome(sharded, reference);
      if (testing::Test::HasFailure()) {
        FAIL() << "placement " << p.name << " shards=" << shards;
      }
    }
  }
}

// --- ShardedBidTable vs EncryptedBidTable --------------------------------

TEST(ShardedBidTable, AnswersMatchSingleTableUnderRandomRemovals) {
  const std::size_t n = 30, k = 3;
  const World w = random_world(n, k, 61);
  core::TrustedThirdParty ttp(base_config(k).bid, 5);
  const core::SuKeyBundle keys = ttp.su_keys();
  const core::BidSubmitter submitter(ttp.config(), keys.gb_master, keys.gc);
  Rng rng(8);
  std::vector<core::BidSubmission> subs;
  for (const auto& bv : w.bids) subs.push_back(submitter.submit(bv, rng));

  for (const std::size_t shards : {1u, 3u, 7u}) {
    core::EncryptedBidTable single(subs, k);
    core::ShardedBidTable sharded(
        subs, k, core::ShardedBidTable::contiguous_shards(n, shards), shards);
    EXPECT_EQ(sharded.num_shards(), shards);
    Rng removals(1000 + shards);
    while (!single.empty()) {
      for (std::size_t r = 0; r < k; ++r) {
        const auto a = single.argmax_in_column(r);
        const auto b = sharded.argmax_in_column(r);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) EXPECT_EQ(*a, *b);
      }
      // Remove a random cell or user on both tables.
      const std::size_t u = removals.below(n);
      if (removals.below(4) == 0) {
        single.remove_user(u);
        sharded.remove_user(u);
      } else {
        const std::size_t r = removals.below(k);
        single.remove(u, r);
        sharded.remove(u, r);
      }
      EXPECT_EQ(single.empty(), sharded.empty());
    }
    EXPECT_TRUE(sharded.empty());
  }
}

TEST(ShardedBidTable, SerializesTheGlobalImageAndRestoresResharded) {
  const std::size_t n = 12, k = 2;
  const World w = random_world(n, k, 67);
  core::TrustedThirdParty ttp(base_config(k).bid, 5);
  const core::SuKeyBundle keys = ttp.su_keys();
  const core::BidSubmitter submitter(ttp.config(), keys.gb_master, keys.gc);
  Rng rng(4);
  std::vector<core::BidSubmission> subs;
  for (const auto& bv : w.bids) subs.push_back(submitter.submit(bv, rng));

  core::EncryptedBidTable single(subs, k);
  core::ShardedBidTable sharded(
      subs, k, core::ShardedBidTable::contiguous_shards(n, 4), 4);
  // Identical wire images before and after identical removals.
  EXPECT_EQ(sharded.serialize(), single.serialize());
  single.remove(3, 1);
  sharded.remove(3, 1);
  single.remove_user(7);
  sharded.remove_user(7);
  const Bytes image = single.serialize();
  EXPECT_EQ(sharded.serialize(), image);

  // Restore the unsharded image into a sharded table (and with a
  // different shard count than the writer used): answers must continue
  // exactly where the snapshot left off.
  for (const std::size_t shards : {1u, 2u, 5u}) {
    auto restored = core::ShardedBidTable::restore(
        core::EncryptedBidTable::deserialize(image),
        core::ShardedBidTable::contiguous_shards(n, shards), shards);
    EXPECT_EQ(restored.serialize(), image);
    for (std::size_t r = 0; r < k; ++r) {
      EXPECT_EQ(restored.argmax_in_column(r), single.argmax_in_column(r));
    }
    EXPECT_FALSE(restored.has(3, 1));
    EXPECT_FALSE(restored.has(7, 0));
  }

  // A shard map that does not fit the image is a typed protocol error.
  try {
    core::ShardedBidTable::restore(
        core::EncryptedBidTable::deserialize(image),
        core::ShardedBidTable::contiguous_shards(n + 1, 2), 2);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
  try {
    auto bad_map = core::ShardedBidTable::contiguous_shards(n, 4);
    core::ShardedBidTable::restore(core::EncryptedBidTable::deserialize(image),
                                   std::move(bad_map), /*num_shards=*/2);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
  // Restore requires an owning table, not one referencing a live vector.
  EXPECT_THROW(core::ShardedBidTable::restore(
                   core::EncryptedBidTable(subs, k),
                   core::ShardedBidTable::contiguous_shards(n, 2), 2),
               LppaError);
}

// --- Session snapshot interop (PR 3 recovery compatibility) --------------

TEST(ShardSessionInterop, SnapshotsInterchangeAcrossShardReconfiguration) {
  const std::size_t n = 8, k = 3;
  const World w = random_world(n, k, 71);
  core::LppaConfig unsharded_cfg = base_config(k);
  core::LppaConfig sharded_cfg = unsharded_cfg;
  sharded_cfg.num_shards = 4;

  core::TrustedThirdParty ttp(unsharded_cfg.bid, 9);

  auto run_to_allocation = [&](const core::LppaConfig& cfg) {
    auto session = std::make_unique<proto::AuctioneerSession>(cfg, n);
    Rng rng(1);
    for (std::size_t u = 0; u < n; ++u) {
      const proto::SuClient client(u, cfg, ttp.su_keys());
      session->ingest(client.location_envelope(w.locations[u], rng));
      session->ingest(client.bid_envelope(w.bids[u], rng));
    }
    Rng alloc_rng(2);
    session->run_allocation(alloc_rng);
    return session;
  };

  const auto unsharded = run_to_allocation(unsharded_cfg);
  const auto sharded = run_to_allocation(sharded_cfg);

  // Same awards, same snapshot bytes: the sharded session's image IS the
  // unsharded one's.
  EXPECT_EQ(sharded->awards(), unsharded->awards());
  const Bytes snap = unsharded->snapshot();
  EXPECT_EQ(sharded->snapshot(), snap);

  // Restore the image under BOTH configurations and finish the round
  // through the TTP on each: byte-identical announcements throughout.
  proto::AuctioneerSession restored_sharded(sharded_cfg, n);
  restored_sharded.restore_from(snap);
  proto::AuctioneerSession restored_unsharded(unsharded_cfg, n);
  restored_unsharded.restore_from(snap);
  EXPECT_EQ(restored_sharded.snapshot(), snap);
  EXPECT_EQ(restored_unsharded.snapshot(), snap);

  proto::TtpService service(ttp);
  std::vector<proto::AuctioneerSession*> sessions = {
      unsharded.get(), sharded.get(), &restored_sharded, &restored_unsharded};
  const auto queries = unsharded->charge_query_envelopes();
  for (proto::AuctioneerSession* s : sessions) {
    EXPECT_EQ(s->charge_query_envelopes(), queries);
  }
  for (const auto& q : queries) {
    const Bytes result = service.handle(q);
    for (proto::AuctioneerSession* s : sessions) {
      s->ingest_charge_results(result);
    }
  }
  const Bytes announcement = unsharded->winner_announcement();
  for (proto::AuctioneerSession* s : sessions) {
    ASSERT_TRUE(s->charging_complete());
    EXPECT_EQ(s->winner_announcement(), announcement);
  }
}

}  // namespace
}  // namespace lppa
