#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace lppa {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table t({}), LppaError);
}

TEST(Table, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), LppaError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), LppaError);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
  EXPECT_EQ(Table::cell(-7LL), "-7");
  EXPECT_EQ(Table::cell(0.5), "0.5000");  // default precision 4
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "100"});
  t.add_row({"longer", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // The value column starts at the same offset in both data rows.
  std::istringstream lines(out);
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.find("100"), row2.find("1", row2.find("longer")));
}

TEST(Table, PrintCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace lppa
