// Transport-level robustness of src/net: connection state machine
// (backpressure bounds, partial writes, progress deadlines), server
// admission control, slow-loris eviction, and deterministic teardown of
// an AuctioneerServer with frames still queued (the ThreadPool shutdown
// ordering contract).
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.h"
#include "net/connection.h"
#include "net/server.h"
#include "proto/journal.h"

namespace lppa::net {
namespace {

using namespace std::chrono_literals;

struct WireWorld {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  core::LppaConfig config;
};

WireWorld make_world(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  WireWorld w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  w.config.num_channels = k;
  w.config.lambda = 100;
  w.config.coord_width = 14;
  w.config.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  w.config.ttp_batch_size = 4;
  return w;
}

// Raw-socket helpers for playing the hostile client.
void wait_writable(int fd, int timeout_ms = 2000) {
  pollfd p{fd, POLLOUT, 0};
  ASSERT_GT(::poll(&p, 1, timeout_ms), 0) << "connect did not complete";
  ASSERT_EQ(take_socket_error(fd), 0);
}

void send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR);
    pollfd p{fd, POLLOUT, 0};
    ::poll(&p, 1, 100);
  }
}

/// True when the peer closed (EOF or reset) within `timeout_ms`.
bool closed_within(int fd, int timeout_ms) {
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint8_t buf[256];
  while (SteadyClock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return true;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;  // ECONNRESET counts as closed
    }
    std::this_thread::sleep_for(5ms);
  }
  return false;
}

/// An AuctioneerServer wired to throwaway round state, parked in a long
/// admission phase so transport behaviour can be probed.
struct ServerFixture {
  WireWorld world = make_world(4, 2, 11);
  core::TrustedThirdParty ttp{world.config.bid, 77};
  proto::RoundJournal journal;
  proto::RoundReport report;
  ServerConfig server_config;
  SocketRoundOptions round;
  std::unique_ptr<AuctioneerServer> server;

  explicit ServerFixture(TransportLimits limits = {},
                         std::size_t max_connections = 64) {
    server_config.limits = limits;
    server_config.max_connections = max_connections;
    server_config.tick = std::chrono::microseconds(1000);
    // Park admission for a long time: waves every ~200 ms, many retries.
    round.hardened.backoff_base_ticks = 100;
    round.hardened.max_retries = 50;
    server = std::make_unique<AuctioneerServer>(
        world.config, world.bids.size(), server_config, round,
        std::vector<bool>(world.bids.size(), true), ttp, /*seed=*/5,
        &journal, &report, /*crashes=*/nullptr, /*start_ticks=*/0);
  }
};

TEST(Connection, BackpressureBoundRefusesEnqueue) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  TransportLimits limits;
  limits.max_write_queue_bytes = 64;
  const auto now = SteadyClock::now();
  Connection conn(Fd(sv[0]), 1, limits, now);
  Fd peer(sv[1]);

  EXPECT_TRUE(conn.enqueue(Bytes(40, 0xAA)));
  EXPECT_TRUE(conn.enqueue(Bytes(24, 0xBB)));  // exactly at the bound
  EXPECT_FALSE(conn.enqueue(Bytes(1, 0xCC)));  // over → eviction signal
  EXPECT_EQ(conn.queued_bytes(), 64u);
}

TEST(Connection, PartialWritesKeepCursorAndDeadline) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  // Shrink the send buffer so EAGAIN is reachable quickly.
  const int small = 4096;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);

  TransportLimits limits;
  limits.max_write_queue_bytes = 1u << 22;
  limits.write_deadline = std::chrono::milliseconds(50);
  auto now = SteadyClock::now();
  Connection conn(Fd(sv[0]), 1, limits, now);
  Fd peer(sv[1]);

  // Queue far more than the kernel will take without a reader.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(conn.enqueue(Bytes(16 * 1024, 0x5A)));
  }
  ASSERT_EQ(conn.on_writable(now), Connection::Io::kOk);
  EXPECT_TRUE(conn.wants_write());  // blocked mid-queue
  EXPECT_FALSE(conn.write_deadline_expired(now));
  EXPECT_TRUE(conn.write_deadline_expired(now + 60ms));

  // Draining the peer un-blocks the writer and clears the deadline.
  std::vector<std::uint8_t> sink(1 << 16);
  std::size_t guard = 0;
  while (conn.wants_write() && guard++ < 10000) {
    while (::recv(sv[1], sink.data(), sink.size(), 0) > 0) {
    }
    now = SteadyClock::now();
    ASSERT_EQ(conn.on_writable(now), Connection::Io::kOk);
  }
  EXPECT_FALSE(conn.wants_write());
  EXPECT_FALSE(conn.write_deadline_expired(now + 1h));
}

TEST(Connection, ReadDeadlineArmsOnlyWhileOwedBytes) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  TransportLimits limits;
  limits.read_deadline = std::chrono::milliseconds(100);
  const auto now = SteadyClock::now();
  Connection conn(Fd(sv[0]), 1, limits, now);
  Fd peer(sv[1]);

  // Never said anything: classic slow-loris, deadline armed.
  EXPECT_FALSE(conn.read_deadline_expired(now));
  EXPECT_TRUE(conn.read_deadline_expired(now + 150ms));

  // Deliver one complete frame: the peer owes nothing, deadline disarmed.
  const Bytes frame = encode_frame(Bytes(8, 0x42));
  ASSERT_EQ(::send(sv[1], frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  std::vector<Bytes> frames;
  ASSERT_EQ(conn.on_readable(frames, now + 10ms), Connection::Io::kOk);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(conn.read_deadline_expired(now + 10h));

  // A half frame re-arms it.
  ASSERT_EQ(::send(sv[1], frame.data(), 3, 0), 3);
  frames.clear();
  const auto later = SteadyClock::now();
  ASSERT_EQ(conn.on_readable(frames, later), Connection::Io::kOk);
  EXPECT_TRUE(frames.empty());
  EXPECT_FALSE(conn.read_deadline_expired(later + 50ms));
  EXPECT_TRUE(conn.read_deadline_expired(later + 150ms));
}

TEST(AuctioneerServer, AdmissionControlClosesExcessConnections) {
  ServerFixture fx({}, /*max_connections=*/2);

  Fd c1 = connect_to(fx.server->endpoint());
  Fd c2 = connect_to(fx.server->endpoint());
  wait_writable(c1.get());
  wait_writable(c2.get());
  // Give the accept loop a beat to register both.
  std::this_thread::sleep_for(50ms);

  Fd c3 = connect_to(fx.server->endpoint());
  wait_writable(c3.get());
  EXPECT_TRUE(closed_within(c3.get(), 2000))
      << "third connection should be closed by admission control";
  // The admitted pair stays open.
  EXPECT_FALSE(closed_within(c1.get(), 100));
}

TEST(AuctioneerServer, SlowLorisIsEvictedCompleteTalkerIsNot) {
  TransportLimits limits;
  limits.read_deadline = std::chrono::milliseconds(100);
  ServerFixture fx(limits);

  // Loris: opens, delivers three bytes of a valid frame, stalls.
  Fd loris = connect_to(fx.server->endpoint());
  wait_writable(loris.get());
  const Bytes frame = encode_frame(Bytes(32, 0x99));  // garbage envelope
  send_all(loris.get(), std::span<const std::uint8_t>(frame.data(), 3));

  // Honest-but-garbled: delivers one COMPLETE frame (the envelope inside
  // is garbage — a strike, not a transport offence) and goes idle.
  Fd talker = connect_to(fx.server->endpoint());
  wait_writable(talker.get());
  send_all(talker.get(), frame);

  EXPECT_TRUE(closed_within(loris.get(), 3000)) << "slow-loris not evicted";
  EXPECT_FALSE(closed_within(talker.get(), 300))
      << "idle-but-complete client must not trip the read deadline";
}

TEST(AuctioneerServer, DestructionWithQueuedFramesIsDeterministic) {
  // Frames still in flight / queued when the server dies: teardown must
  // drain or cancel deterministically — never hang, never crash.  This
  // pins the ThreadPool::stop ordering contract the destructor relies
  // on.
  for (int iteration = 0; iteration < 3; ++iteration) {
    ServerFixture fx;
    std::vector<Fd> clients;
    const Bytes frame = encode_frame(Bytes(64, 0x7F));
    for (int i = 0; i < 8; ++i) {
      clients.push_back(connect_to(fx.server->endpoint()));
      wait_writable(clients.back().get());
      for (int j = 0; j < 4; ++j) send_all(clients.back().get(), frame);
    }
    // Destroy with traffic still arriving.
    fx.server.reset();
  }
  SUCCEED();
}

TEST(ThreadPool, RunAfterStopExecutesInlineInOrder) {
  ThreadPool pool(2);
  pool.stop();
  // A stopped pool must not enqueue (nobody would ever pop): run()
  // degrades to inline, ascending-w execution on the caller.
  std::vector<std::size_t> order;
  pool.run(4, [&](std::size_t w) { order.push_back(w); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));

  // Idempotent stop, and exceptions still propagate inline.
  pool.stop();
  EXPECT_THROW(
      pool.run(2,
               [](std::size_t w) {
                 if (w == 1) throw LppaError(ErrorKind::kState, "boom");
               }),
      LppaError);
}

TEST(ThreadPool, StopDrainsQueuedWorkBeforeJoining) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.run(3, [&](std::size_t) {
      std::this_thread::sleep_for(10ms);
      ran.fetch_add(1);
    });
    pool.stop();  // explicit stop, then destructor's stop is a no-op
  }
  EXPECT_EQ(ran.load(), 3);
}

}  // namespace
}  // namespace lppa::net
