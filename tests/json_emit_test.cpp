// Every JSON artifact the repo emits must survive a strict parser.
//
// The bug class this suite pins: the old hand-rolled emitters escaped
// quotes and backslashes but passed control bytes straight through, so
// a hostile Exclusion::detail (validator text quoting attacker-chosen
// message bytes) produced a document no conforming parser would accept.
// All emission now goes through obs::json; these tests hold it to RFC
// 8259 via the independent parser in strict_json.h.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "proto/round_report.h"
#include "strict_json.h"

namespace lppa {
namespace {

using testjson::parse_strict;

TEST(JsonEscaping, ControlBytesAndQuotes) {
  std::string out;
  obs::append_json_escaped(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
  EXPECT_EQ(obs::json_quote("x"), "\"x\"");
  // UTF-8 passes through untouched.
  EXPECT_EQ(obs::json_quote("λ±"), "\"λ±\"");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_number(-std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
}

TEST(JsonNumber, RoundTripsExactly) {
  for (double v : {0.0, -0.0, 1.0, 0.1, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                   123456789.123456789, -2.5}) {
    const std::string s = obs::json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    // And the strict parser accepts what we emit.
    EXPECT_EQ(parse_strict(s).number, v);
  }
}

TEST(JsonWriter, MisuseThrowsInsteadOfEmittingGarbage) {
  std::ostringstream out;
  {
    obs::JsonWriter w(out);
    w.begin_object();
    EXPECT_THROW(w.value(1.0), LppaError);  // value without a key
    EXPECT_THROW(w.end_array(), LppaError);  // mismatched close
  }
  std::ostringstream out2;
  obs::JsonWriter w2(out2);
  w2.value(1.0);
  EXPECT_TRUE(w2.complete());
  EXPECT_THROW(w2.value(2.0), LppaError);  // two top-level values
}

TEST(JsonWriter, NestedDocumentParses) {
  std::ostringstream out;
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_object();
  w.key("list").begin_array().value(1).value("two").null().end_array();
  w.key("obj").begin_object().field("k", true).end_object();
  w.end_object();
  ASSERT_TRUE(w.complete());
  const auto doc = parse_strict(out.str());
  EXPECT_EQ(doc.at("list").size(), 3u);
  EXPECT_EQ(doc.at("list")[1].string, "two");
  EXPECT_TRUE(doc.at("list")[2].is_null());
  EXPECT_TRUE(doc.at("obj").at("k").boolean);
}

// The corpus of hostile detail strings: every byte class that has ever
// broken a hand-rolled JSON emitter.
std::vector<std::string> hostile_details() {
  std::vector<std::string> corpus = {
      "plain text",
      "quote\" in the middle",
      "trailing backslash\\",
      "\\\" escaped-quote bait",
      "line\nbreak\r\n and tab\t",
      std::string("embedded\0nul", 12),
      "\x01\x02\x03\x1f all the low controls",
      "</script><script>alert(1)</script>",
      "{\"fake\": \"json\"}",
      "unicode λ ± 位置 🔒",
      "bell\x07 backspace\x08 formfeed\x0c",
  };
  std::string every_control;
  for (int c = 1; c < 0x20; ++c) every_control.push_back(static_cast<char>(c));
  corpus.push_back(every_control);
  return corpus;
}

TEST(RoundReportJson, HostileDetailCorpusRoundTrips) {
  for (const std::string& detail : hostile_details()) {
    proto::RoundReport report;
    report.round = 3;
    report.num_users = 5;
    report.completed = true;
    report.survivors = {0, 2, 4};
    proto::RoundReport::Exclusion ex;
    ex.user = 1;
    ex.reason = proto::RoundReport::ExclusionReason::kInvalid;
    ex.detail = detail;
    report.excluded.push_back(ex);
    report.retry_waves = 2;
    report.faults.drops = 7;

    const std::string json = report.to_json();
    testjson::JsonValue doc;
    ASSERT_NO_THROW(doc = parse_strict(json))
        << "detail bytes broke the document: " << json;
    // The parser must hand back the exact original bytes.
    EXPECT_EQ(doc.at("excluded")[0].at("detail").string, detail);
    EXPECT_EQ(doc.at("excluded")[0].at("reason").string, "invalid");
    EXPECT_EQ(doc.at("round").number, 3.0);
    EXPECT_EQ(doc.at("survivors").size(), 3u);
    EXPECT_EQ(doc.at("faults").at("drops").number, 7.0);
  }
}

TEST(RoundReportJson, SchemaFieldsPresent) {
  const auto doc = parse_strict(proto::RoundReport{}.to_json());
  for (const char* key :
       {"round", "num_users", "completed", "degraded", "survivors",
        "excluded", "retry_waves", "charge_attempts", "rejected_messages",
        "duplicate_redeliveries", "crash_recoveries", "journal_records",
        "journal_bytes", "replayed_records", "deadline_ticks", "ticks_used",
        "faults"}) {
    EXPECT_TRUE(doc.has(key)) << key;
  }
}

TEST(BenchStyleDump, ReportSplicesViaRaw) {
  // The abl_faults/abl_recovery emitters splice RoundReport::to_json()
  // into the sweep array via JsonWriter::raw(); the combined document
  // must still be strict — even with a hostile detail inside.
  proto::RoundReport report;
  report.num_users = 2;
  proto::RoundReport::Exclusion ex;
  ex.user = 0;
  ex.reason = proto::RoundReport::ExclusionReason::kEquivocation;
  ex.detail = "two bodies under one hmac: \"\x02\\";
  report.excluded.push_back(ex);

  std::ostringstream out;
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object().field("drop", 0.1 * i).field("byzantine", i);
    w.key("report").raw(report.to_json());
    w.end_object();
  }
  w.end_array();
  ASSERT_TRUE(w.complete());

  const auto doc = parse_strict(out.str());
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc[1].at("report").at("excluded")[0].at("detail").string,
            ex.detail);
  EXPECT_EQ(doc[1].at("report").at("excluded")[0].at("reason").string,
            "equivocation");
}

TEST(BenchStyleDump, NonFiniteSampleFieldsBecomeNull) {
  // A bench sample that divides by a zero wall must not leak "inf" into
  // the dump: the writer emits null, which strict parsers accept and
  // bench_compare.py --validate then treats as missing-not-poisoned.
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("wall_ms", 0.0)
      .field("throughput", std::numeric_limits<double>::infinity())
      .field("ratio", std::nan(""))
      .end_object();
  const auto doc = parse_strict(out.str());
  EXPECT_TRUE(doc.at("throughput").is_null());
  EXPECT_TRUE(doc.at("ratio").is_null());
  EXPECT_EQ(doc.at("wall_ms").number, 0.0);
}

TEST(StrictParser, RejectsTheOldEmitterBugs) {
  // Sanity-check the referee itself: documents with the defects the old
  // emitters produced must be rejected.
  EXPECT_THROW(parse_strict("{\"d\": \"a\nb\"}"), std::runtime_error);
  EXPECT_THROW(parse_strict("{\"x\": inf}"), std::runtime_error);
  EXPECT_THROW(parse_strict("{\"x\": nan}"), std::runtime_error);
  EXPECT_THROW(parse_strict("{\"x\": Infinity}"), std::runtime_error);
  EXPECT_THROW(parse_strict("{\"x\": 1,}"), std::runtime_error);
  EXPECT_THROW(parse_strict("[1] [2]"), std::runtime_error);
  EXPECT_THROW(parse_strict("{\"x\": 01}"), std::runtime_error);
}

}  // namespace
}  // namespace lppa
