#include "auction/allocate.h"

#include <gtest/gtest.h>

#include <set>

#include "auction/bid_matrix.h"
#include "common/rng.h"

namespace lppa::auction {
namespace {

std::vector<Award> allocate(const std::vector<BidVector>& bids,
                            const ConflictGraph& g, std::uint64_t seed = 1) {
  BidMatrix table(bids, bids.front().size());
  Rng rng(seed);
  return greedy_allocate(table, g, rng);
}

TEST(GreedyAllocate, SingleUserSingleChannel) {
  ConflictGraph g(1);
  const auto awards = allocate({{5}}, g);
  ASSERT_EQ(awards.size(), 1u);
  EXPECT_EQ(awards[0].user, 0u);
  EXPECT_EQ(awards[0].channel, 0u);
}

TEST(GreedyAllocate, HighestBidderWinsWithoutConflicts) {
  ConflictGraph g(3);
  // One channel, three bidders; only the max can win it (the winner's row
  // removal ends the auction for the others? no — non-conflicting others
  // keep their entries, so the channel is re-auctioned to them too).
  const auto awards = allocate({{3}, {9}, {5}}, g);
  // Spectrum reuse: all three are mutually non-conflicting, so each wins
  // the channel in successive rotations, highest first.
  ASSERT_EQ(awards.size(), 3u);
  EXPECT_EQ(awards[0].user, 1u);
  EXPECT_EQ(awards[1].user, 2u);
  EXPECT_EQ(awards[2].user, 0u);
}

TEST(GreedyAllocate, ConflictingNeighborsExcludedFromChannel) {
  ConflictGraph g(3);
  g.add_conflict(0, 1);
  g.add_conflict(0, 2);
  // User 0 bids highest on the only channel: it wins, and both neighbours
  // lose their entry for that channel -> exactly one award.
  const auto awards = allocate({{9}, {5}, {4}}, g);
  ASSERT_EQ(awards.size(), 1u);
  EXPECT_EQ(awards[0].user, 0u);
}

TEST(GreedyAllocate, EachUserWinsAtMostOneChannel) {
  ConflictGraph g(2);
  // User 0 dominates both channels but may only take one (row removed).
  const auto awards = allocate({{9, 9}, {1, 1}}, g);
  std::set<UserId> winners;
  for (const auto& a : awards) {
    EXPECT_TRUE(winners.insert(a.user).second)
        << "user " << a.user << " won twice";
  }
  EXPECT_EQ(awards.size(), 2u);  // user 1 picks up the leftover channel
}

TEST(GreedyAllocate, CoWinnersOfAChannelNeverConflict) {
  Rng rng(42);
  std::vector<SuLocation> locs;
  std::vector<BidVector> bids;
  for (int i = 0; i < 30; ++i) {
    locs.push_back({rng.below(200), rng.below(200)});
    BidVector bv(4);
    for (auto& b : bv) b = rng.below(16);
    bids.push_back(bv);
  }
  const ConflictGraph g = ConflictGraph::from_locations(locs, 25);
  const auto awards = allocate(bids, g, 7);
  for (std::size_t i = 0; i < awards.size(); ++i) {
    for (std::size_t j = i + 1; j < awards.size(); ++j) {
      if (awards[i].channel == awards[j].channel) {
        EXPECT_FALSE(g.conflicts(awards[i].user, awards[j].user))
            << "conflicting users " << awards[i].user << " and "
            << awards[j].user << " share channel " << awards[i].channel;
      }
    }
  }
}

TEST(GreedyAllocate, TerminatesWithEmptyTable) {
  ConflictGraph g(4);
  BidMatrix table({{1, 2}, {3, 4}, {5, 6}, {7, 8}}, 2);
  Rng rng(3);
  greedy_allocate(table, g, rng);
  EXPECT_TRUE(table.empty());
}

TEST(GreedyAllocate, WinnerIsColumnMaxAmongRemaining) {
  // Deterministic single-channel check across several seeds: the first
  // award must always be the global column max.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ConflictGraph g(5);
    const auto awards = allocate({{2}, {8}, {4}, {6}, {1}}, g, seed);
    ASSERT_FALSE(awards.empty());
    EXPECT_EQ(awards[0].user, 1u) << "seed " << seed;
  }
}

TEST(GreedyAllocate, MismatchedGraphRejected) {
  ConflictGraph g(2);
  BidMatrix table({{1}, {2}, {3}}, 1);
  Rng rng(1);
  EXPECT_THROW(greedy_allocate(table, g, rng), LppaError);
}

TEST(GreedyAllocate, ChargesLeftUnsetByAllocator) {
  ConflictGraph g(2);
  const auto awards = allocate({{3}, {1}}, g);
  for (const auto& a : awards) {
    EXPECT_EQ(a.charge, 0u);
    EXPECT_TRUE(a.valid);
  }
}

TEST(GlobalGreedy, GrantsLargestBidFirst) {
  ConflictGraph g(3);
  g.add_conflict(0, 1);
  // u0 and u1 conflict; u1 has the largest bid so it takes channel 0.
  const auto awards = global_greedy_allocate({{5}, {9}, {2}}, g);
  ASSERT_GE(awards.size(), 2u);
  EXPECT_EQ(awards[0].user, 1u);
  // u0 is blocked on channel 0 by u1; u2 reuses it.
  bool u0_served = false;
  for (const auto& a : awards) u0_served |= a.user == 0;
  EXPECT_FALSE(u0_served);
}

TEST(GlobalGreedy, EachUserServedAtMostOnce) {
  ConflictGraph g(4);
  const auto awards = global_greedy_allocate(
      {{9, 8}, {7, 6}, {5, 4}, {3, 2}}, g);
  std::set<UserId> winners;
  for (const auto& a : awards) {
    EXPECT_TRUE(winners.insert(a.user).second);
  }
  EXPECT_EQ(awards.size(), 4u);  // no conflicts: everyone served
}

TEST(GlobalGreedy, CoWinnersNeverConflict) {
  Rng rng(5);
  std::vector<SuLocation> locs;
  std::vector<BidVector> bids;
  for (int i = 0; i < 25; ++i) {
    locs.push_back({rng.below(300), rng.below(300)});
    BidVector bv(3);
    for (auto& b : bv) b = rng.below(16);
    bids.push_back(bv);
  }
  const ConflictGraph g = ConflictGraph::from_locations(locs, 30);
  const auto awards = global_greedy_allocate(bids, g);
  for (std::size_t i = 0; i < awards.size(); ++i) {
    for (std::size_t j = i + 1; j < awards.size(); ++j) {
      if (awards[i].channel == awards[j].channel) {
        EXPECT_FALSE(g.conflicts(awards[i].user, awards[j].user));
      }
    }
  }
}

TEST(GlobalGreedy, RevenueAtLeastMatchesAlgorithm3) {
  // On conflict-free worlds, serving globally largest bids first can
  // never earn less than the random rotation (both serve everyone, but
  // global greedy gives each user its own maximum first whenever free).
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    std::vector<BidVector> bids;
    for (int i = 0; i < 10; ++i) {
      BidVector bv(4);
      for (auto& b : bv) b = rng.below(16);
      bids.push_back(bv);
    }
    ConflictGraph g(10);  // no conflicts
    const auto global = global_greedy_allocate(bids, g);
    Money global_rev = 0;
    for (const auto& a : global) global_rev += bids[a.user][a.channel];

    BidMatrix table(bids, 4);
    Rng alloc_rng(round);
    const auto alg3 = greedy_allocate(table, g, alloc_rng);
    Money alg3_rev = 0;
    for (const auto& a : alg3) alg3_rev += bids[a.user][a.channel];

    EXPECT_GE(global_rev, alg3_rev) << "round " << round;
  }
}

TEST(GlobalGreedy, ValidatesInputs) {
  ConflictGraph g(2);
  EXPECT_THROW(global_greedy_allocate({}, g), LppaError);
  EXPECT_THROW(global_greedy_allocate({{1}, {2}, {3}}, g), LppaError);
  EXPECT_THROW(global_greedy_allocate({{1, 2}, {3}}, g), LppaError);
}

TEST(GreedyAllocate, AllZeroBidsStillClearTheTable) {
  // Zeros are entries too; the allocator must grant and drain them (the
  // charging stage later invalidates zero-priced wins).
  ConflictGraph g(2);
  const auto awards = allocate({{0, 0}, {0, 0}}, g, 5);
  EXPECT_FALSE(awards.empty());
}

}  // namespace
}  // namespace lppa::auction
