#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace lppa::crypto {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(Sha256::hash("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// NIST CAVP SHA256ShortMsg samples (byte-oriented).
TEST(Sha256, CavpShortMessages) {
  struct Vector {
    const char* msg_hex;
    const char* digest_hex;
  };
  const Vector vectors[] = {
      {"d3", "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1"},
      {"11af", "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98"},
      {"b4190e", "dff2e73091f6c05e528896c4c831b9448653dc2ff043528f6769437bc7b975c2"},
      {"74ba2521", "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e"},
  };
  for (const auto& v : vectors) {
    const Bytes msg = from_hex(v.msg_hex);
    EXPECT_EQ(Sha256::hash(msg).hex(), v.digest_hex) << v.msg_hex;
  }
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message forces the padding into a second block.
  const std::string msg(64, 'x');
  const Digest one_shot = Sha256::hash(msg);
  Sha256 h;
  h.update(msg);
  EXPECT_EQ(h.finalize(), one_shot);
}

TEST(Sha256, FiftyFiveAndFiftySixBytePadEdges) {
  // 55 bytes: length fits the same block; 56 bytes: spills into the next.
  const Digest d55 = Sha256::hash(std::string(55, 'y'));
  const Digest d56 = Sha256::hash(std::string(56, 'y'));
  EXPECT_NE(d55, d56);
  // Regression pin for the 56-byte edge (verified against coreutils
  // sha256sum).
  EXPECT_EQ(Sha256::hash(std::string(56, 'a')).hex(),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, IncrementalMatchesOneShotForAllSplitPoints) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog and keeps going for a "
      "while to cross several SHA-256 block boundaries in this test string.";
  const Digest expected = Sha256::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finalize(), expected) << "split at " << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("abc");
  const Digest first = h.finalize();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finalize(), first);
}

TEST(Digest, OrderingIsLexicographic) {
  Digest a, b;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  EXPECT_LT(a, b);
  b.bytes[0] = 1;
  EXPECT_EQ(a, b);
  b.bytes[31] = 1;
  EXPECT_LT(a, b);
}

TEST(Digest, FingerprintUsesLeadingBytes) {
  Digest d;
  for (int i = 0; i < 8; ++i) d.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
  EXPECT_EQ(d.fingerprint(), 0x0807060504030201ULL);
}

TEST(Digest, StdHashIsUsable) {
  const Digest a = Sha256::hash("x");
  const Digest b = Sha256::hash("y");
  const std::hash<Digest> hasher;
  EXPECT_NE(hasher(a), hasher(b));
}

// Avalanche-style property sweep: flipping any single input byte changes
// the digest.
class Sha256Avalanche : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Avalanche, SingleByteFlipChangesDigest) {
  const std::size_t len = GetParam();
  lppa::Rng rng(len + 17);
  Bytes msg(len);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
  const Digest base = Sha256::hash(msg);
  for (std::size_t i = 0; i < len; i += std::max<std::size_t>(1, len / 8)) {
    Bytes mutated = msg;
    mutated[i] ^= 0x01;
    EXPECT_NE(Sha256::hash(mutated), base) << "flip at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256Avalanche,
                         ::testing::Values(1, 31, 32, 63, 64, 65, 127, 128,
                                           1000));

}  // namespace
}  // namespace lppa::crypto
