// Torn-frame / fragmentation corpus for the socket frame codec.
//
// The FrameDecoder sits between a hostile byte stream and the Envelope
// parser, so its failure modes are pinned exhaustively: every prefix
// length of a valid frame, every 2-chunk split, single-byte delivery,
// and a full single-bit-flip sweep over the frame bytes.  The contract
// under damage is exact: framing violations classify as
// LppaError(kProtocol) (and poison the stream — no resynchronisation
// guesswork), envelope-level damage surfaces as kProtocol from
// Envelope::deserialize, and an incomplete frame yields nothing at all —
// never a partial payload.
#include <gtest/gtest.h>

#include <cstring>

#include "net/frame.h"
#include "proto/messages.h"

namespace lppa::net {
namespace {

Bytes sample_envelope() {
  proto::Envelope env;
  env.type = proto::MessageType::kRetransmitRequest;
  env.sender = 7;
  proto::RetransmitRequest req;
  req.mask = proto::RetransmitRequest::kLocation;
  env.payload = req.serialize();
  return env.serialize();
}

TEST(FrameCodec, RoundTripSingleFrame) {
  const Bytes payload = sample_envelope();
  const Bytes frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder dec;
  dec.feed(frame);
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, BackToBackFramesInOneFeed) {
  const Bytes a = sample_envelope();
  Bytes b = sample_envelope();
  b.push_back(0x55);  // distinct second payload
  Bytes wire = encode_frame(a);
  const Bytes fb = encode_frame(b);
  wire.insert(wire.end(), fb.begin(), fb.end());

  FrameDecoder dec;
  dec.feed(wire);
  auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, a);
  out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, b);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameCodec, EveryPrefixYieldsNothingAndLeaksNoState) {
  const Bytes payload = sample_envelope();
  const Bytes frame = encode_frame(payload);

  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(std::span<const std::uint8_t>(frame.data(), cut));
    // A torn frame is invisible: no payload, no poisoning, the decoder
    // just waits for the rest.
    EXPECT_FALSE(dec.next().has_value()) << "cut=" << cut;
    EXPECT_FALSE(dec.poisoned()) << "cut=" << cut;
    EXPECT_EQ(dec.buffered(), cut) << "cut=" << cut;

    // Completing the stream afterwards recovers the exact payload.
    dec.feed(std::span<const std::uint8_t>(frame.data() + cut,
                                           frame.size() - cut));
    const auto out = dec.next();
    ASSERT_TRUE(out.has_value()) << "cut=" << cut;
    EXPECT_EQ(*out, payload) << "cut=" << cut;
  }
}

TEST(FrameCodec, EveryTwoChunkSplitReassembles) {
  const Bytes payload = sample_envelope();
  const Bytes frame = encode_frame(payload);

  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(std::span<const std::uint8_t>(frame.data(), cut));
    dec.feed(std::span<const std::uint8_t>(frame.data() + cut,
                                           frame.size() - cut));
    const auto out = dec.next();
    ASSERT_TRUE(out.has_value()) << "cut=" << cut;
    EXPECT_EQ(*out, payload) << "cut=" << cut;
    EXPECT_FALSE(dec.next().has_value());
  }
}

TEST(FrameCodec, SingleByteDeliveryReassembles) {
  const Bytes payload = sample_envelope();
  const Bytes frame = encode_frame(payload);

  FrameDecoder dec;
  for (const std::uint8_t b : frame) {
    dec.feed(std::span<const std::uint8_t>(&b, 1));
  }
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

// The full single-bit-flip sweep: every bit of the frame is flipped in
// turn.  Classification must be exact —
//   * header magic damage → kProtocol from the decoder, stream poisoned;
//   * header length damage → kProtocol (zero/oversize) or an incomplete
//     frame that never yields a payload (plausible shorter/longer
//     length), never a wrong payload;
//   * body damage (including the Envelope's trailing checksum bytes) →
//     the decoder hands the bytes through, and Envelope::deserialize
//     rejects them with kProtocol.
TEST(FrameCodec, BitFlipSweepClassifiesExactly) {
  const Bytes payload = sample_envelope();
  const Bytes frame = encode_frame(payload);

  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes damaged = frame;
      damaged[byte] = static_cast<std::uint8_t>(
          damaged[byte] ^ static_cast<std::uint8_t>(1u << bit));

      FrameDecoder dec;
      dec.feed(damaged);
      if (byte < 4) {
        // Magic word damage.
        EXPECT_THROW(
            {
              try {
                (void)dec.next();
              } catch (const LppaError& err) {
                EXPECT_EQ(err.kind(), ErrorKind::kProtocol);
                throw;
              }
            },
            LppaError)
            << "byte=" << byte << " bit=" << bit;
        EXPECT_TRUE(dec.poisoned());
        // A poisoned decoder refuses everything until reset().
        EXPECT_THROW((void)dec.feed(frame), LppaError);
        dec.reset();
        dec.feed(frame);
        ASSERT_TRUE(dec.next().has_value());
        continue;
      }
      if (byte < kFrameHeaderBytes) {
        // Length damage: either rejected outright or the frame stays
        // incomplete / splits differently — but a payload, if one comes
        // out, must never silently equal a truncation artifact the
        // Envelope layer would accept.
        try {
          const auto out = dec.next();
          if (out.has_value()) {
            EXPECT_THROW((void)proto::Envelope::deserialize(*out), LppaError)
                << "byte=" << byte << " bit=" << bit;
          }
        } catch (const LppaError& err) {
          EXPECT_EQ(err.kind(), ErrorKind::kProtocol)
              << "byte=" << byte << " bit=" << bit;
        }
        continue;
      }
      // Body damage: frame layer passes it through, envelope layer must
      // reject with kProtocol (the trailing frame checksum makes every
      // flip detectable).
      const auto out = dec.next();
      ASSERT_TRUE(out.has_value()) << "byte=" << byte << " bit=" << bit;
      EXPECT_THROW(
          {
            try {
              (void)proto::Envelope::deserialize(*out);
            } catch (const LppaError& err) {
              EXPECT_EQ(err.kind(), ErrorKind::kProtocol);
              throw;
            }
          },
          LppaError)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(FrameCodec, RejectsOversizedAndEmptyFrames) {
  FrameDecoder dec;
  // Handcraft a header claiming a payload past the cap.
  Bytes header(kFrameHeaderBytes, 0);
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header.data(), &magic, 4);
  std::memcpy(header.data() + 4, &huge, 4);
  dec.feed(header);
  EXPECT_THROW((void)dec.next(), LppaError);
  EXPECT_TRUE(dec.poisoned());

  dec.reset();
  const std::uint32_t zero = 0;
  std::memcpy(header.data() + 4, &zero, 4);
  dec.feed(header);
  EXPECT_THROW((void)dec.next(), LppaError);

  EXPECT_THROW((void)encode_frame({}), LppaError);
}

}  // namespace
}  // namespace lppa::net
