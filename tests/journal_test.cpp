// RoundJournal framing and the truncation/corruption corpus.
//
// The recovery guarantee rests on one property of the log and of the
// envelopes it stores: damage is always DETECTED.  The corpus tests
// sweep it bit by bit — every prefix truncation and every single-bit
// flip of a valid journal image (and of a valid Envelope) must surface
// as LppaError(kProtocol), never as a crash, never as silently accepted
// different state.  The only prefixes that parse are the exact record
// boundaries, which is the write-ahead contract itself: a crash between
// appends leaves a shorter but valid log.
#include <gtest/gtest.h>

#include <set>

#include "proto/journal.h"
#include "proto/messages.h"

namespace lppa::proto {
namespace {

RoundJournal sample_journal() {
  RoundJournal journal;
  journal.append_round_start(12);
  journal.append(JournalRecordType::kAccepted, Bytes{1, 2, 3, 4, 5});
  journal.append_user_note(JournalRecordType::kStrike, 3,
                           "bad digest length");
  journal.append_user_note(JournalRecordType::kEquivocation, 7,
                           "conflicting bid submissions");
  journal.append_nack(5, 0x3, 2);
  journal.append(JournalRecordType::kFinalized);
  journal.append(JournalRecordType::kAllocated, Bytes{9, 9, 9});
  journal.append(JournalRecordType::kChargeCommit, Bytes{0xAB});
  journal.append(JournalRecordType::kCommitted);
  return journal;
}

TEST(Journal, RecordsRoundTripWithTypedPayloads) {
  const RoundJournal journal = sample_journal();
  EXPECT_EQ(journal.num_records(), 9u);
  EXPECT_FALSE(journal.empty());

  const auto records = RoundJournal::read(journal.data());
  ASSERT_EQ(records.size(), 9u);
  EXPECT_EQ(records[0].type, JournalRecordType::kRoundStart);
  EXPECT_EQ(records[0].round_start_users(), 12u);
  EXPECT_EQ(records[1].type, JournalRecordType::kAccepted);
  EXPECT_EQ(records[1].payload, (Bytes{1, 2, 3, 4, 5}));

  const auto strike = records[2].user_note();
  EXPECT_EQ(strike.user, 3u);
  EXPECT_EQ(strike.detail, "bad digest length");
  const auto equivocation = records[3].user_note();
  EXPECT_EQ(equivocation.user, 7u);
  EXPECT_EQ(equivocation.detail, "conflicting bid submissions");

  const auto nack = records[4].nack();
  EXPECT_EQ(nack.user, 5u);
  EXPECT_EQ(nack.mask, 0x3u);
  EXPECT_EQ(nack.wave, 2u);

  EXPECT_EQ(records[5].type, JournalRecordType::kFinalized);
  EXPECT_TRUE(records[5].payload.empty());
  EXPECT_EQ(records[6].type, JournalRecordType::kAllocated);
  EXPECT_EQ(records[8].type, JournalRecordType::kCommitted);

  EXPECT_TRUE(RoundJournal::read({}).empty());
}

/// Offsets at which a truncation leaves a valid (shorter) journal: the
/// record boundaries, i.e. exactly the states a crash between appends
/// can leave on disk.
std::set<std::size_t> record_boundaries() {
  RoundJournal journal;
  std::set<std::size_t> boundaries{0};
  const RoundJournal full = sample_journal();
  const auto records = RoundJournal::read(full.data());
  for (const auto& rec : records) {
    journal.append(rec.type, rec.payload);
    boundaries.insert(journal.data().size());
  }
  // Re-appending record by record reproduces the image byte for byte
  // (the framing has no hidden cross-record state).
  EXPECT_EQ(journal.data(), full.data());
  return boundaries;
}

TEST(JournalCorpus, EveryTruncationIsBoundaryValidOrTypedError) {
  const RoundJournal journal = sample_journal();
  const Bytes& image = journal.data();
  const std::set<std::size_t> boundaries = record_boundaries();

  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::span<const std::uint8_t> prefix(image.data(), len);
    if (boundaries.count(len)) {
      // A crash-consistent prefix: parses to the records before the cut.
      EXPECT_NO_THROW(RoundJournal::read(prefix)) << "boundary " << len;
      continue;
    }
    try {
      RoundJournal::read(prefix);
      FAIL() << "truncation at " << len << " accepted";
    } catch (const LppaError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kProtocol) << "truncation at " << len;
    }
  }
}

TEST(JournalCorpus, EverySingleBitFlipIsATypedError) {
  const RoundJournal journal = sample_journal();
  const Bytes image = journal.data();

  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = image;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        RoundJournal::read(flipped);
        FAIL() << "flip at byte " << byte << " bit " << bit << " accepted";
      } catch (const LppaError& e) {
        EXPECT_EQ(e.kind(), ErrorKind::kProtocol)
            << "flip at byte " << byte << " bit " << bit;
      }
    }
  }
}

Bytes sample_envelope() {
  Envelope e;
  e.type = MessageType::kBidSubmission;
  e.sender = 7;
  e.payload = Bytes{10, 20, 30, 40, 50, 60};
  return e.serialize();
}

TEST(EnvelopeCorpus, EveryTruncationIsATypedError) {
  const Bytes wire = sample_envelope();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    try {
      Envelope::deserialize(std::span<const std::uint8_t>(wire.data(), len));
      FAIL() << "truncation at " << len << " accepted";
    } catch (const LppaError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kProtocol) << "truncation at " << len;
    }
  }
}

TEST(EnvelopeCorpus, EverySingleBitFlipIsATypedError) {
  const Bytes wire = sample_envelope();
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = wire;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        Envelope::deserialize(flipped);
        FAIL() << "flip at byte " << byte << " bit " << bit << " accepted";
      } catch (const LppaError& e) {
        EXPECT_EQ(e.kind(), ErrorKind::kProtocol)
            << "flip at byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(Journal, DecodersRejectMistypedRecords) {
  RoundJournal journal;
  journal.append_round_start(4);
  const auto records = RoundJournal::read(journal.data());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_THROW(records[0].user_note(), LppaError);
  EXPECT_THROW(records[0].nack(), LppaError);
}

}  // namespace
}  // namespace lppa::proto
