#include "geo/pathloss.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace lppa::geo {
namespace {

TEST(PathLossModel, MonotoneDecreasingWithDistance) {
  PathLossModel m;
  m.exponent = 3.0;
  double prev = m.median_rssi_dbm(60.0, 1000.0);
  for (double d = 2000.0; d <= 64000.0; d *= 2.0) {
    const double rssi = m.median_rssi_dbm(60.0, d);
    EXPECT_LT(rssi, prev) << "d=" << d;
    prev = rssi;
  }
}

TEST(PathLossModel, ReferenceDistanceAnchors) {
  PathLossModel m;
  m.reference_loss_db = 90.0;
  m.reference_distance_m = 1000.0;
  // At d0 the loss is exactly pl0 regardless of exponent.
  m.exponent = 2.0;
  EXPECT_DOUBLE_EQ(m.median_rssi_dbm(60.0, 1000.0), -30.0);
  m.exponent = 4.0;
  EXPECT_DOUBLE_EQ(m.median_rssi_dbm(60.0, 1000.0), -30.0);
}

TEST(PathLossModel, TenXDistanceCostsTenNDb) {
  PathLossModel m;
  m.exponent = 3.5;
  const double near = m.median_rssi_dbm(60.0, 1000.0);
  const double far = m.median_rssi_dbm(60.0, 10000.0);
  EXPECT_NEAR(near - far, 35.0, 1e-9);
}

TEST(PathLossModel, ClampsBelowReferenceDistance) {
  PathLossModel m;
  EXPECT_DOUBLE_EQ(m.median_rssi_dbm(60.0, 10.0),
                   m.median_rssi_dbm(60.0, m.reference_distance_m));
}

TEST(PathLossModel, HigherExponentLosesMore) {
  PathLossModel urban, rural;
  urban.exponent = 4.0;
  rural.exponent = 2.5;
  EXPECT_LT(urban.median_rssi_dbm(60.0, 20000.0),
            rural.median_rssi_dbm(60.0, 20000.0));
}

TEST(ShadowingField, MatchesRequestedSigma) {
  const Grid grid(100, 100, 750.0);
  Rng rng(5);
  const auto field = make_shadowing_field(grid, 8.0, 2, rng);
  ASSERT_EQ(field.size(), grid.cell_count());
  EXPECT_NEAR(mean(field), 0.0, 0.5);
  EXPECT_NEAR(sample_stddev(field), 8.0, 0.2);
}

TEST(ShadowingField, ZeroSigmaIsFlat) {
  const Grid grid(10, 10, 1.0);
  Rng rng(5);
  const auto field = make_shadowing_field(grid, 0.0, 2, rng);
  for (double v : field) EXPECT_EQ(v, 0.0);
}

TEST(ShadowingField, SmoothingIncreasesSpatialCorrelation) {
  const Grid grid(100, 100, 1.0);
  auto lag1_correlation = [&](const std::vector<double>& f) {
    double num = 0.0, den = 0.0;
    for (int r = 0; r < 100; ++r) {
      for (int c = 0; c + 1 < 100; ++c) {
        const double a = f[static_cast<std::size_t>(r) * 100 + c];
        const double b = f[static_cast<std::size_t>(r) * 100 + c + 1];
        num += a * b;
        den += a * a;
      }
    }
    return num / den;
  };
  Rng rng1(9), rng2(9);
  const auto rough = make_shadowing_field(grid, 6.0, 0, rng1);
  const auto smooth = make_shadowing_field(grid, 6.0, 3, rng2);
  EXPECT_LT(std::abs(lag1_correlation(rough)), 0.1);
  EXPECT_GT(lag1_correlation(smooth), 0.5);
}

TEST(ShadowingField, DeterministicPerSeed) {
  const Grid grid(20, 20, 1.0);
  Rng a(77), b(77);
  EXPECT_EQ(make_shadowing_field(grid, 5.0, 2, a),
            make_shadowing_field(grid, 5.0, 2, b));
}

TEST(ShadowingField, RejectsInvalidParameters) {
  const Grid grid(10, 10, 1.0);
  Rng rng(1);
  EXPECT_THROW(make_shadowing_field(grid, -1.0, 2, rng), LppaError);
  EXPECT_THROW(make_shadowing_field(grid, 1.0, -1, rng), LppaError);
}

}  // namespace
}  // namespace lppa::geo
