#include "core/encrypted_bid_table.h"

#include <gtest/gtest.h>

#include "auction/bid_matrix.h"
#include "core/lppa_auction.h"
#include "crypto/sealed_box.h"

namespace lppa::core {
namespace {

struct EncryptedTableTest : ::testing::Test {
  Rng rng{31337};
  crypto::SecretKey gb = crypto::SecretKey::generate(rng);
  crypto::SecretKey gc = crypto::SecretKey::generate(rng);
  PpbsBidConfig cfg = PpbsBidConfig::advanced(15, 3, 4,
                                              ZeroDisguisePolicy::none(15));
  BidSubmitter submitter{cfg, gb, gc};

  std::vector<BidSubmission> make(const std::vector<auction::BidVector>& bids) {
    std::vector<BidSubmission> subs;
    for (const auto& bv : bids) subs.push_back(submitter.submit(bv, rng));
    return subs;
  }
};

TEST_F(EncryptedTableTest, ShapeValidation) {
  const auto subs = make({{1, 2}, {3, 4}});
  EXPECT_NO_THROW(EncryptedBidTable(subs, 2));
  EXPECT_THROW(EncryptedBidTable(subs, 3), LppaError);
  const std::vector<BidSubmission> empty;
  EXPECT_THROW(EncryptedBidTable(empty, 2), LppaError);
}

TEST_F(EncryptedTableTest, ArgmaxMatchesPlaintext) {
  const std::vector<auction::BidVector> bids = {
      {5, 0, 9}, {7, 2, 9}, {1, 8, 0}};
  const auto subs = make(bids);
  EncryptedBidTable table(subs, 3);
  EXPECT_EQ(table.argmax_in_column(0), auction::UserId{1});
  EXPECT_EQ(table.argmax_in_column(1), auction::UserId{2});
}

TEST_F(EncryptedTableTest, RemoveSemanticsMatchBidMatrix) {
  const std::vector<auction::BidVector> bids = {{5, 1}, {9, 2}, {3, 8}};
  const auto subs = make(bids);
  EncryptedBidTable table(subs, 2);
  table.remove(1, 0);
  EXPECT_FALSE(table.has(1, 0));
  EXPECT_TRUE(table.has(1, 1));
  EXPECT_EQ(table.argmax_in_column(0), auction::UserId{0});
  table.remove_user(0);
  EXPECT_EQ(table.argmax_in_column(0), auction::UserId{2});
  EXPECT_FALSE(table.empty());
  table.remove_user(1);
  table.remove_user(2);
  EXPECT_TRUE(table.empty());
}

TEST_F(EncryptedTableTest, EmptyColumnReturnsNullopt) {
  const auto subs = make({{4}});
  EncryptedBidTable table(subs, 1);
  table.remove(0, 0);
  EXPECT_EQ(table.argmax_in_column(0), std::nullopt);
}

TEST_F(EncryptedTableTest, EntryAccessorReturnsSubmission) {
  const auto subs = make({{4, 6}});
  EncryptedBidTable table(subs, 2);
  EXPECT_EQ(&table.entry(0, 1), &subs[0].channels[1]);
  EXPECT_THROW(table.entry(1, 0), LppaError);
  EXPECT_THROW(table.entry(0, 2), LppaError);
}

TEST_F(EncryptedTableTest, FullAllocationParityWithPlaintext) {
  // The same allocation randomness over (a) true bids in a BidMatrix and
  // (b) masked bids in an EncryptedBidTable must award identically when
  // no zero-disguise is active, because the masked encoding is
  // order-preserving within each column.
  // Ties would let the two tables pick different (equally-priced) winners
  // whose conflict neighbourhoods differ, so give every column distinct
  // bids: then the award sequences must agree exactly.
  Rng world(7);
  for (int round = 0; round < 10; ++round) {
    std::vector<auction::SuLocation> locs;
    const std::size_t n = 12, k = 4;
    std::vector<auction::BidVector> bids(n, auction::BidVector(k));
    for (std::size_t r = 0; r < k; ++r) {
      std::vector<auction::Money> column(n);
      for (std::size_t u = 0; u < n; ++u) column[u] = u;  // distinct 0..n-1
      world.shuffle(column);
      for (std::size_t u = 0; u < n; ++u) bids[u][r] = column[u];
    }
    for (std::size_t i = 0; i < n; ++i) {
      locs.push_back({world.below(400), world.below(400)});
    }
    const auto g = auction::ConflictGraph::from_locations(locs, 60);

    auction::BidMatrix plain(bids, k);
    Rng rng_plain(round + 100);
    const auto plain_awards = auction::greedy_allocate(plain, g, rng_plain);

    const auto subs = make(bids);
    EncryptedBidTable masked(subs, k);
    Rng rng_masked(round + 100);
    const auto masked_awards = auction::greedy_allocate(masked, g, rng_masked);

    EXPECT_EQ(plain_awards, masked_awards) << "round " << round;
  }
}

TEST_F(EncryptedTableTest, SerializeRestoreRoundTripsByteIdentically) {
  // Property sweep over random scenarios: any mid-allocation table state
  // (varying population, channel count, padding level, and a random set
  // of consumed cells) must serialize -> deserialize -> serialize into
  // byte-identical images, with the restored table answering every query
  // like the original — including the O(1) empty() via the live counter.
  Rng sweep(2024);
  for (int scenario = 0; scenario < 12; ++scenario) {
    const std::size_t n = 1 + sweep.below(7);
    const std::size_t k = 1 + sweep.below(5);
    // Vary the padding parameters so the submission wire sizes differ
    // across scenarios (rd in [1,4], cr in [k, k+4]).
    const PpbsBidConfig scenario_cfg = PpbsBidConfig::advanced(
        15, 1 + sweep.below(4), k + sweep.below(5),
        ZeroDisguisePolicy::none(15));
    BidSubmitter scenario_submitter{scenario_cfg, gb, gc};
    std::vector<BidSubmission> subs;
    for (std::size_t u = 0; u < n; ++u) {
      auction::BidVector bv(k);
      for (auto& b : bv) b = sweep.below(16);
      subs.push_back(scenario_submitter.submit(bv, sweep));
    }

    EncryptedBidTable table(subs, k);
    const std::size_t removals = sweep.below(n * k + 1);
    for (std::size_t i = 0; i < removals; ++i) {
      table.remove(sweep.below(n), sweep.below(k));
    }
    if (sweep.bernoulli(0.3)) table.remove_user(sweep.below(n));

    const Bytes image = table.serialize();
    const EncryptedBidTable restored = EncryptedBidTable::deserialize(image);
    EXPECT_EQ(restored.serialize(), image) << "scenario " << scenario;
    EXPECT_EQ(restored.num_users(), n);
    EXPECT_EQ(restored.num_channels(), k);
    EXPECT_EQ(restored.empty(), table.empty()) << "scenario " << scenario;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t r = 0; r < k; ++r) {
        ASSERT_EQ(restored.has(u, r), table.has(u, r))
            << "scenario " << scenario << " cell " << u << "," << r;
      }
    }
    for (std::size_t r = 0; r < k; ++r) {
      EXPECT_EQ(restored.argmax_in_column(r), table.argmax_in_column(r))
          << "scenario " << scenario << " column " << r;
    }

    // Draining the restored copy keeps the live counter consistent all
    // the way to empty() — the property that guards the allocation loop.
    EncryptedBidTable drained = EncryptedBidTable::deserialize(image);
    for (std::size_t u = 0; u < n; ++u) drained.remove_user(u);
    EXPECT_TRUE(drained.empty()) << "scenario " << scenario;
  }
}

TEST_F(EncryptedTableTest, RemoveUserRestoreDifferentialUnderBothStrategies) {
  // Churn removal-path audit: random interleavings of remove /
  // remove_user / argmax (cursor advancement) / insert_user
  // (re-activation with cursor pull-back), then serialize -> restore
  // under BOTH argmax strategies.  Four tables — live sorted, live scan,
  // restored sorted, restored scan — must agree with each other AND with
  // the plaintext oracle on every query, and the bitmap / live counter /
  // image must match cell-for-cell and byte-for-byte throughout.
  Rng sweep(4477);
  for (int scenario = 0; scenario < 10; ++scenario) {
    const std::size_t n = 2 + sweep.below(6);
    const std::size_t k = 1 + sweep.below(4);
    std::vector<auction::BidVector> bids(n);
    std::vector<BidSubmission> subs;
    for (std::size_t u = 0; u < n; ++u) {
      bids[u].assign(k, 0);
      for (auto& b : bids[u]) b = sweep.below(16);
      subs.push_back(submitter.submit(bids[u], sweep));
    }

    EncryptedBidTable sorted(subs, k, ArgmaxStrategy::kSortedColumns);
    EncryptedBidTable scan(subs, k, ArgmaxStrategy::kTournamentScan);
    std::vector<std::vector<bool>> present(n, std::vector<bool>(k, true));

    // Equal plaintext bids compare in an arbitrary (deterministic)
    // order in the masked domain, so the oracle checks the winner's
    // VALUE, not its identity — winner identity is pinned separately by
    // the four-way agreement between live/restored × sorted/scan.
    const auto oracle_max = [&](std::size_t r) -> std::optional<long> {
      std::optional<long> best;
      for (std::size_t u = 0; u < n; ++u) {
        if (present[u][r] && (!best || bids[u][r] > *best)) best = bids[u][r];
      }
      return best;
    };
    const auto check_all = [&](const EncryptedBidTable& t,
                               const char* label) {
      std::size_t live = 0;
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t r = 0; r < k; ++r) {
          ASSERT_EQ(t.has(u, r), static_cast<bool>(present[u][r]))
              << label << " scenario " << scenario << " cell " << u << ","
              << r;
          live += present[u][r] ? 1 : 0;
        }
      }
      ASSERT_EQ(t.live_cells(), live) << label << " scenario " << scenario;
      ASSERT_EQ(t.empty(), live == 0) << label << " scenario " << scenario;
      for (std::size_t r = 0; r < k; ++r) {
        const auto winner = t.argmax_in_column(r);
        const auto best = oracle_max(r);
        ASSERT_EQ(winner.has_value(), best.has_value())
            << label << " scenario " << scenario << " column " << r;
        if (winner) {
          ASSERT_TRUE(present[*winner][r])
              << label << " scenario " << scenario << " column " << r
              << " crowned a tombstoned cell";
          ASSERT_EQ(static_cast<long>(bids[*winner][r]), *best)
              << label << " scenario " << scenario << " column " << r;
        }
      }
    };

    const std::size_t ops = 4 + sweep.below(3 * n);
    for (std::size_t i = 0; i < ops; ++i) {
      const std::size_t u = sweep.below(n);
      switch (sweep.below(4)) {
        case 0: {
          const std::size_t r = sweep.below(k);
          if (sorted.has(u, r)) {
            sorted.remove(u, r);
            scan.remove(u, r);
            present[u][r] = false;
          }
          break;
        }
        case 1:
          sorted.remove_user(u);
          scan.remove_user(u);
          for (std::size_t r = 0; r < k; ++r) present[u][r] = false;
          break;
        case 2: {
          // Advance the sorted cursors so serialization happens with
          // memoised heads mid-column (they must not leak into the
          // image or the restored answers).
          const std::size_t r = sweep.below(k);
          ASSERT_EQ(sorted.argmax_in_column(r), scan.argmax_in_column(r));
          break;
        }
        case 3: {
          // Re-activate a fully tombstoned row (the churn arrival path).
          bool any = false;
          for (std::size_t r = 0; r < k; ++r) any = any || present[u][r];
          if (!any) {
            sorted.insert_user(u);
            scan.insert_user(u);
            for (std::size_t r = 0; r < k; ++r) present[u][r] = true;
          }
          break;
        }
      }
    }

    check_all(sorted, "live sorted");
    check_all(scan, "live scan");
    const Bytes image = sorted.serialize();
    ASSERT_EQ(scan.serialize(), image)
        << "strategies disagree on the wire image, scenario " << scenario;
    const EncryptedBidTable restored_sorted = EncryptedBidTable::deserialize(
        image, ArgmaxStrategy::kSortedColumns);
    const EncryptedBidTable restored_scan = EncryptedBidTable::deserialize(
        image, ArgmaxStrategy::kTournamentScan);
    ASSERT_EQ(restored_sorted.serialize(), image);
    ASSERT_EQ(restored_scan.serialize(), image);
    check_all(restored_sorted, "restored sorted");
    check_all(restored_scan, "restored scan");
    for (std::size_t r = 0; r < k; ++r) {
      const auto winner = sorted.argmax_in_column(r);
      ASSERT_EQ(scan.argmax_in_column(r), winner)
          << "scenario " << scenario << " column " << r;
      ASSERT_EQ(restored_sorted.argmax_in_column(r), winner)
          << "scenario " << scenario << " column " << r;
      ASSERT_EQ(restored_scan.argmax_in_column(r), winner)
          << "scenario " << scenario << " column " << r;
    }
  }
}

TEST_F(EncryptedTableTest, SortedAndScanStrategiesAgreeOnEveryQuery) {
  // The sorted-column index is a pure acceleration structure: for any
  // submission set and any interleaving of removals, every
  // argmax_in_column answer must match the seed tournament scan
  // bit-for-bit (ties included — the sort is stable on user id, which is
  // exactly the scan's first-seen-wins rule).
  Rng sweep(4242);
  for (int scenario = 0; scenario < 15; ++scenario) {
    const std::size_t n = 2 + sweep.below(10);
    const std::size_t k = 1 + sweep.below(4);
    std::vector<auction::BidVector> bids(n, auction::BidVector(k));
    for (auto& bv : bids) {
      // below(4) forces heavy ties; below(16) gives near-distinct columns.
      const auction::Money hi = sweep.bernoulli(0.5) ? 4 : 16;
      for (auto& b : bv) b = sweep.below(hi);
    }
    const auto subs = make(bids);
    EncryptedBidTable sorted(subs, k, ArgmaxStrategy::kSortedColumns);
    EncryptedBidTable scan(subs, k, ArgmaxStrategy::kTournamentScan);
    for (int step = 0; step < 40 && !sorted.empty(); ++step) {
      const std::size_t r = sweep.below(k);
      ASSERT_EQ(sorted.argmax_in_column(r), scan.argmax_in_column(r))
          << "scenario " << scenario << " step " << step << " column " << r;
      if (sweep.bernoulli(0.5)) {
        const std::size_t u = sweep.below(n);
        sorted.remove_user(u);
        scan.remove_user(u);
      } else {
        const std::size_t u = sweep.below(n);
        sorted.remove(u, r);
        scan.remove(u, r);
      }
    }
    EXPECT_EQ(sorted.empty(), scan.empty()) << "scenario " << scenario;
  }
}

TEST_F(EncryptedTableTest, SortedStrategyAllocationStreamMatchesScan) {
  // End-to-end differential over the greedy allocator: the full award
  // stream (winner order, channels, prices) must be identical under both
  // strategies for the same channel-draw randomness.
  Rng world(99);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 10, k = 3;
    std::vector<auction::SuLocation> locs;
    std::vector<auction::BidVector> bids(n, auction::BidVector(k));
    for (auto& bv : bids) {
      for (auto& b : bv) b = world.below(15);
    }
    for (std::size_t i = 0; i < n; ++i) {
      locs.push_back({world.below(300), world.below(300)});
    }
    const auto g = auction::ConflictGraph::from_locations(locs, 70);
    const auto subs = make(bids);

    EncryptedBidTable sorted(subs, k, ArgmaxStrategy::kSortedColumns);
    Rng rng_sorted(round + 500);
    const auto sorted_awards = auction::greedy_allocate(sorted, g, rng_sorted);

    EncryptedBidTable scan(subs, k, ArgmaxStrategy::kTournamentScan);
    Rng rng_scan(round + 500);
    const auto scan_awards = auction::greedy_allocate(scan, g, rng_scan);

    EXPECT_EQ(sorted_awards, scan_awards) << "round " << round;
  }
}

TEST_F(EncryptedTableTest, MidAllocationSnapshotRestoresIdenticallyUnderBothStrategies) {
  // The PR 3 recovery path serializes a partially-consumed table and
  // resumes allocation after restart.  A snapshot taken mid-allocation
  // must restore into a table whose remaining allocation stream is
  // identical regardless of which argmax strategy the restored process
  // picks — the wire image carries no strategy state, and the sorted
  // index must rebuild around the already-consumed cells.
  Rng world(321);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 9, k = 3;
    std::vector<auction::SuLocation> locs;
    std::vector<auction::BidVector> bids(n, auction::BidVector(k));
    for (auto& bv : bids) {
      for (auto& b : bv) b = world.below(15);
    }
    for (std::size_t i = 0; i < n; ++i) {
      locs.push_back({world.below(300), world.below(300)});
    }
    const auto g = auction::ConflictGraph::from_locations(locs, 70);
    const auto subs = make(bids);

    // Consume a prefix of the allocation by hand: pop some winners the
    // way greedy_allocate would (remove the winner row and one random
    // conflicting neighbour's cell), then snapshot.
    EncryptedBidTable live(subs, k, ArgmaxStrategy::kSortedColumns);
    const std::size_t consumed = 1 + world.below(4);
    for (std::size_t i = 0; i < consumed && !live.empty(); ++i) {
      const std::size_t r = world.below(k);
      const auto winner = live.argmax_in_column(r);
      if (!winner) continue;
      live.remove_user(*winner);
      live.remove(world.below(n), world.below(k));
    }
    const Bytes image = live.serialize();

    EncryptedBidTable restored_sorted = EncryptedBidTable::deserialize(
        image, ArgmaxStrategy::kSortedColumns);
    EncryptedBidTable restored_scan = EncryptedBidTable::deserialize(
        image, ArgmaxStrategy::kTournamentScan);

    Rng rng_a(round + 900);
    Rng rng_b(round + 900);
    const auto awards_sorted =
        auction::greedy_allocate(restored_sorted, g, rng_a);
    const auto awards_scan = auction::greedy_allocate(restored_scan, g, rng_b);
    EXPECT_EQ(awards_sorted, awards_scan) << "round " << round;
  }
}

TEST_F(EncryptedTableTest, FullRoundOutcomeIdenticalAcrossStrategies) {
  // Highest-level differential: a complete LppaAuction round (submission,
  // conflict graph, allocation, TTP charging) configured with each
  // strategy must publish identical awards AND identical TTP-validated
  // charges — the sorted index may not perturb anything downstream.
  for (int round = 0; round < 3; ++round) {
    const std::size_t n = 14, k = 3;
    Rng world(round + 77);
    std::vector<auction::SuLocation> locs;
    std::vector<auction::BidVector> bids(n, auction::BidVector(k));
    for (auto& bv : bids) {
      for (auto& b : bv) b = world.below(15);
    }
    for (std::size_t i = 0; i < n; ++i) {
      locs.push_back({world.below(1000), world.below(1000)});
    }

    core::LppaConfig cfg;
    cfg.num_channels = k;
    cfg.lambda = 100;
    cfg.coord_width = 12;
    cfg.bid = PpbsBidConfig::advanced(15, 3, 4, ZeroDisguisePolicy::none(15));

    cfg.argmax_strategy = ArgmaxStrategy::kSortedColumns;
    core::LppaAuction auction_sorted(cfg, /*ttp_seed=*/round + 1);
    Rng rng_sorted(round + 5000);
    const auto out_sorted = auction_sorted.run(locs, bids, rng_sorted);

    cfg.argmax_strategy = ArgmaxStrategy::kTournamentScan;
    core::LppaAuction auction_scan(cfg, /*ttp_seed=*/round + 1);
    Rng rng_scan(round + 5000);
    const auto out_scan = auction_scan.run(locs, bids, rng_scan);

    EXPECT_EQ(out_sorted.outcome.awards, out_scan.outcome.awards)
        << "round " << round;
    EXPECT_EQ(out_sorted.view.awards, out_scan.view.awards)
        << "round " << round;
    EXPECT_EQ(out_sorted.outcome.winning_bid_sum(),
              out_scan.outcome.winning_bid_sum())
        << "round " << round;
    EXPECT_EQ(out_sorted.manipulations_detected,
              out_scan.manipulations_detected)
        << "round " << round;
  }
}

TEST_F(EncryptedTableTest, ParallelSortMatchesSerialSort) {
  // The column sort fans out across the ThreadPool when sort_threads > 1;
  // each column is sorted by exactly one worker, so the resulting order
  // (and hence every argmax answer) must be independent of thread count.
  const std::size_t n = 24, k = 6;
  Rng world(55);
  std::vector<auction::BidVector> bids(n, auction::BidVector(k));
  for (auto& bv : bids) {
    for (auto& b : bv) b = world.below(8);  // plenty of ties
  }
  const auto subs = make(bids);
  EncryptedBidTable serial(subs, k, ArgmaxStrategy::kSortedColumns, 1);
  EncryptedBidTable threaded(subs, k, ArgmaxStrategy::kSortedColumns, 4);
  for (std::size_t r = 0; r < k; ++r) {
    EXPECT_EQ(serial.argmax_in_column(r), threaded.argmax_in_column(r)) << r;
  }
  for (std::size_t u = 0; u < n; u += 2) {
    serial.remove_user(u);
    threaded.remove_user(u);
    for (std::size_t r = 0; r < k; ++r) {
      ASSERT_EQ(serial.argmax_in_column(r), threaded.argmax_in_column(r))
          << "after removing user " << u << " column " << r;
    }
  }
}

TEST_F(EncryptedTableTest, DeserializeRejectsDamagedImages) {
  const auto subs = make({{5, 1}, {9, 2}});
  EncryptedBidTable table(subs, 2);
  table.remove(0, 1);
  const Bytes image = table.serialize();

  // Truncation, garbage padding bits, and a lying live counter are all
  // typed protocol errors (the live counter is cross-checked against the
  // bitmap — trusting either side alone could stall the allocator).
  for (const std::size_t len : {std::size_t{0}, std::size_t{4},
                                image.size() - 1}) {
    try {
      EncryptedBidTable::deserialize(
          std::span<const std::uint8_t>(image.data(), len));
      FAIL() << "truncation at " << len << " accepted";
    } catch (const LppaError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
    }
  }
  Bytes lying_live = image;
  // The u64 live counter sits 9 bytes before the end (8 counter bytes +
  // one packed-bitmap byte for the 4 cells).
  lying_live[lying_live.size() - 9] ^= 1;
  try {
    EncryptedBidTable::deserialize(lying_live);
    FAIL() << "live-counter mismatch accepted";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
  Bytes garbage_padding = image;
  garbage_padding.back() |= 0xF0;  // bits past the 4 real cells
  try {
    EncryptedBidTable::deserialize(garbage_padding);
    FAIL() << "garbage padding bits accepted";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST_F(EncryptedTableTest, SubsetViewAnswersInLocalIds) {
  const std::vector<auction::BidVector> bids = {
      {5, 0}, {7, 2}, {1, 8}, {9, 3}};
  const auto subs = make(bids);
  // Members {1, 3}: local 0 -> global 1, local 1 -> global 3.
  auto view = EncryptedBidTable::subset_view(subs, 2, {1, 3});
  EXPECT_EQ(view.num_users(), 2u);
  EXPECT_EQ(view.argmax_in_column(0), auction::UserId{1});  // global 3
  EXPECT_EQ(view.argmax_in_column(1), auction::UserId{1});  // global 3
  view.remove(1, 0);
  EXPECT_EQ(view.argmax_in_column(0), auction::UserId{0});  // global 1
  EXPECT_EQ(view.live_cells(), 3u);

  // Subset tables never serialize — the sharded wrapper owns the global
  // image; asking is a caller bug, not a protocol fault.
  EXPECT_THROW(view.serialize(), LppaError);
  EXPECT_THROW(EncryptedBidTable::subset_view(subs, 2, {}), LppaError);
  EXPECT_THROW(EncryptedBidTable::subset_view(subs, 2, {4}), LppaError);
}

TEST_F(EncryptedTableTest, SerializeImageMatchesMemberSerialize) {
  const std::vector<auction::BidVector> bids = {{5, 1}, {9, 2}, {3, 8}};
  const auto subs = make(bids);
  EncryptedBidTable table(subs, 2);
  table.remove(0, 1);
  std::vector<bool> present = {true, false, true, true, true, true};
  EXPECT_EQ(EncryptedBidTable::serialize_image(subs, 2, present, 5),
            table.serialize());
  // Dimension mismatch between bitmap and submissions is rejected.
  EXPECT_THROW(EncryptedBidTable::serialize_image(subs, 2, {true}, 1),
               LppaError);
}

}  // namespace
}  // namespace lppa::core
