#include "proto/bus.h"

#include <gtest/gtest.h>

namespace lppa::proto {
namespace {

TEST(Address, FactoriesAndLabels) {
  EXPECT_EQ(Address::su(3).label(), "su3");
  EXPECT_EQ(Address::auctioneer().label(), "auctioneer");
  EXPECT_EQ(Address::ttp().label(), "ttp");
  EXPECT_EQ(Address::su(1), Address::su(1));
  EXPECT_NE(Address::su(1), Address::su(2));
  EXPECT_NE(Address::su(0), Address::auctioneer());
}

TEST(MessageBus, FifoDeliveryPerEndpoint) {
  MessageBus bus;
  bus.send(Address::su(0), Address::auctioneer(), {1});
  bus.send(Address::su(1), Address::auctioneer(), {2});
  bus.send(Address::su(0), Address::ttp(), {3});
  EXPECT_EQ(bus.pending(Address::auctioneer()), 2u);
  EXPECT_EQ(bus.pending(Address::ttp()), 1u);
  EXPECT_EQ(bus.receive(Address::auctioneer()), Bytes{1});
  EXPECT_EQ(bus.receive(Address::auctioneer()), Bytes{2});
  EXPECT_EQ(bus.receive(Address::auctioneer()), std::nullopt);
  EXPECT_EQ(bus.receive(Address::ttp()), Bytes{3});
}

TEST(MessageBus, ReceiveFromEmptyEndpointIsNullopt) {
  MessageBus bus;
  EXPECT_EQ(bus.receive(Address::su(5)), std::nullopt);
  EXPECT_EQ(bus.pending(Address::su(5)), 0u);
}

TEST(MessageBus, LinkStatsAccumulate) {
  MessageBus bus;
  bus.send(Address::su(0), Address::auctioneer(), Bytes(10));
  bus.send(Address::su(0), Address::auctioneer(), Bytes(20));
  bus.send(Address::su(1), Address::auctioneer(), Bytes(5));
  const auto link0 = bus.link(Address::su(0), Address::auctioneer());
  EXPECT_EQ(link0.messages, 2u);
  EXPECT_EQ(link0.bytes, 30u);
  const auto link1 = bus.link(Address::su(1), Address::auctioneer());
  EXPECT_EQ(link1.messages, 1u);
  EXPECT_EQ(link1.bytes, 5u);
  const auto missing = bus.link(Address::ttp(), Address::su(0));
  EXPECT_EQ(missing.messages, 0u);
}

TEST(MessageBus, TotalIntoSumsAllSenders) {
  MessageBus bus;
  bus.send(Address::su(0), Address::auctioneer(), Bytes(10));
  bus.send(Address::su(1), Address::auctioneer(), Bytes(20));
  bus.send(Address::ttp(), Address::auctioneer(), Bytes(7));
  bus.send(Address::auctioneer(), Address::ttp(), Bytes(100));
  const auto into_auctioneer = bus.total_into(Address::Kind::kAuctioneer);
  EXPECT_EQ(into_auctioneer.messages, 3u);
  EXPECT_EQ(into_auctioneer.bytes, 37u);
  const auto into_ttp = bus.total_into(Address::Kind::kTtp);
  EXPECT_EQ(into_ttp.bytes, 100u);
}

TEST(MessageBus, StatsSurviveDraining) {
  MessageBus bus;
  bus.send(Address::su(0), Address::auctioneer(), Bytes(42));
  (void)bus.receive(Address::auctioneer());
  EXPECT_EQ(bus.link(Address::su(0), Address::auctioneer()).bytes, 42u);
}

}  // namespace
}  // namespace lppa::proto
