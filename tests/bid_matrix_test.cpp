#include "auction/bid_matrix.h"

#include <gtest/gtest.h>

namespace lppa::auction {
namespace {

BidMatrix make_matrix() {
  // users x channels:
  //   u0: 5 0 9
  //   u1: 7 2 9
  //   u2: 1 8 0
  return BidMatrix({{5, 0, 9}, {7, 2, 9}, {1, 8, 0}}, 3);
}

TEST(BidMatrix, Dimensions) {
  const BidMatrix m = make_matrix();
  EXPECT_EQ(m.num_users(), 3u);
  EXPECT_EQ(m.num_channels(), 3u);
}

TEST(BidMatrix, RejectsBadShapes) {
  EXPECT_THROW(BidMatrix({}, 3), LppaError);
  EXPECT_THROW(BidMatrix({{1, 2}}, 3), LppaError);
  EXPECT_THROW(BidMatrix({{1, 2, 3}}, 0), LppaError);
}

TEST(BidMatrix, ArgmaxPicksLargest) {
  const BidMatrix m = make_matrix();
  EXPECT_EQ(m.argmax_in_column(0), UserId{1});
  EXPECT_EQ(m.argmax_in_column(1), UserId{2});
}

TEST(BidMatrix, ArgmaxTieKeepsFirstUser) {
  const BidMatrix m = make_matrix();
  EXPECT_EQ(m.argmax_in_column(2), UserId{0});  // u0 and u1 both bid 9
}

TEST(BidMatrix, RemoveEntryChangesArgmax) {
  BidMatrix m = make_matrix();
  m.remove(1, 0);
  EXPECT_FALSE(m.has(1, 0));
  EXPECT_EQ(m.argmax_in_column(0), UserId{0});
}

TEST(BidMatrix, RemoveUserClearsRow) {
  BidMatrix m = make_matrix();
  m.remove_user(0);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_FALSE(m.has(0, r));
  EXPECT_EQ(m.argmax_in_column(2), UserId{1});
}

TEST(BidMatrix, EmptyColumnYieldsNullopt) {
  BidMatrix m = make_matrix();
  m.remove(0, 2);
  m.remove(1, 2);
  m.remove(2, 2);
  EXPECT_EQ(m.argmax_in_column(2), std::nullopt);
}

TEST(BidMatrix, EmptyAfterRemovingEveryone) {
  BidMatrix m = make_matrix();
  EXPECT_FALSE(m.empty());
  for (UserId u = 0; u < 3; ++u) m.remove_user(u);
  EXPECT_TRUE(m.empty());
}

TEST(BidMatrix, BidAccessor) {
  BidMatrix m = make_matrix();
  EXPECT_EQ(m.bid(2, 1), 8u);
  m.remove(2, 1);
  EXPECT_THROW(m.bid(2, 1), LppaError);
  EXPECT_THROW(m.bid(3, 0), LppaError);
}

TEST(BidMatrix, ZerosAreLegitimateEntries) {
  // A zero bid is present (channel column still considers it) until
  // removed — mirroring the paper where zeros stay in the table.
  const BidMatrix m = make_matrix();
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_EQ(m.bid(0, 1), 0u);
}

}  // namespace
}  // namespace lppa::auction
