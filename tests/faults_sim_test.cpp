// Fault-injection coverage of the hardened auction round: the paper's
// protocol under a network that drops, duplicates, reorders, corrupts and
// delays, with Byzantine bidders mixed into the population.  The central
// assertion is the issue's acceptance criterion: a seeded faulty round
// completes, excludes exactly the faulty parties, and awards the
// survivors byte-identically to a fault-free round restricted to them.
#include <gtest/gtest.h>

#include <algorithm>

#include "proto/fault.h"
#include "proto/session.h"
#include "sim/multi_round.h"

namespace lppa::proto {
namespace {

struct WireWorld {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  core::LppaConfig config;
};

WireWorld make_world(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  WireWorld w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  w.config.num_channels = k;
  w.config.lambda = 100;
  w.config.coord_width = 14;
  w.config.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  w.config.ttp_batch_size = 4;
  return w;
}

std::vector<std::size_t> excluded_users(const RoundReport& report) {
  std::vector<std::size_t> users;
  for (const auto& e : report.excluded) users.push_back(e.user);
  std::sort(users.begin(), users.end());
  return users;
}

TEST(FaultsSession, FaultFreeMatchesLegacyWire) {
  const WireWorld w = make_world(12, 3, 21);

  core::TrustedThirdParty ttp_a(w.config.bid, 77);
  MessageBus bus_a;
  Rng rng_a(5);
  const auto legacy =
      run_wire_auction(w.config, ttp_a, w.locations, w.bids, bus_a, rng_a);

  core::TrustedThirdParty ttp_b(w.config.bid, 77);
  MessageBus bus_b;
  Rng rng_b(5);
  const auto hardened = run_hardened_wire_auction(
      w.config, ttp_b, w.locations, w.bids, bus_b, rng_b);

  EXPECT_EQ(hardened.awards, legacy.awards);
  EXPECT_TRUE(hardened.report.completed);
  EXPECT_EQ(hardened.report.survivors.size(), 12u);
  EXPECT_TRUE(hardened.report.excluded.empty());
  EXPECT_EQ(hardened.report.retry_waves, 0u);
  EXPECT_EQ(hardened.report.charge_attempts,
            hardened.awards.empty() ? 0u : 1u);
}

TEST(FaultsSession, AcceptanceDropPlusByzantine) {
  // The issue's acceptance run: 10 % message drop on every link plus two
  // Byzantine SUs that corrupt everything they send.  The round must
  // complete, exclude exactly the faulty parties, and award the
  // survivors byte-identically to a fault-free round without them.
  const WireWorld w = make_world(12, 3, 31);
  const std::vector<std::size_t> byzantine{3, 7};

  FaultSpec spec;
  spec.drop = 0.10;
  FaultInjector injector(/*seed=*/4242, spec);
  for (const std::size_t b : byzantine) {
    injector.mark_byzantine(Address::su(b));
  }

  core::TrustedThirdParty ttp_faulty(w.config.bid, 77);
  MessageBus bus_faulty;
  bus_faulty.set_fault_injector(&injector);
  Rng rng_faulty(5);
  const auto faulty = run_hardened_wire_auction(
      w.config, ttp_faulty, w.locations, w.bids, bus_faulty, rng_faulty);

  ASSERT_TRUE(faulty.report.completed);
  EXPECT_EQ(excluded_users(faulty.report), byzantine);
  EXPECT_EQ(faulty.report.survivors.size(), 10u);
  EXPECT_GT(faulty.report.faults.drops, 0u);
  EXPECT_GT(faulty.report.faults.corruptions, 0u);

  // Fault-free reference restricted to the survivors: same seeds, no
  // injector, Byzantine SUs excluded up front (their RNG streams are
  // still consumed, so the survivors mask identically).
  core::TrustedThirdParty ttp_clean(w.config.bid, 77);
  MessageBus bus_clean;
  Rng rng_clean(5);
  const auto clean = run_hardened_wire_auction(
      w.config, ttp_clean, w.locations, w.bids, bus_clean, rng_clean, {},
      byzantine);

  ASSERT_TRUE(clean.report.completed);
  EXPECT_EQ(clean.report.survivors, faulty.report.survivors);
  EXPECT_EQ(clean.awards, faulty.awards);
}

TEST(FaultsSession, DuplicateEverythingIsBenign) {
  const WireWorld w = make_world(8, 2, 41);

  core::TrustedThirdParty ttp_a(w.config.bid, 9);
  MessageBus bus_a;
  Rng rng_a(3);
  const auto clean = run_hardened_wire_auction(w.config, ttp_a, w.locations,
                                               w.bids, bus_a, rng_a);

  FaultSpec spec;
  spec.duplicate = 1.0;
  FaultInjector injector(1, spec);
  core::TrustedThirdParty ttp_b(w.config.bid, 9);
  MessageBus bus_b;
  bus_b.set_fault_injector(&injector);
  Rng rng_b(3);
  const auto doubled = run_hardened_wire_auction(w.config, ttp_b, w.locations,
                                                 w.bids, bus_b, rng_b);

  EXPECT_TRUE(doubled.report.completed);
  EXPECT_EQ(doubled.report.survivors.size(), 8u);
  EXPECT_GT(doubled.report.duplicate_redeliveries, 0u);
  EXPECT_EQ(doubled.awards, clean.awards);
}

TEST(FaultsSession, ReorderAndDelayAreAbsorbed) {
  const WireWorld w = make_world(8, 2, 51);

  core::TrustedThirdParty ttp_a(w.config.bid, 9);
  MessageBus bus_a;
  Rng rng_a(3);
  const auto clean = run_hardened_wire_auction(w.config, ttp_a, w.locations,
                                               w.bids, bus_a, rng_a);

  FaultSpec spec;
  spec.reorder = 0.4;
  spec.delay = 0.4;
  spec.max_delay_ticks = 3;
  FaultInjector injector(7, spec);
  core::TrustedThirdParty ttp_b(w.config.bid, 9);
  MessageBus bus_b;
  bus_b.set_fault_injector(&injector);
  Rng rng_b(3);
  const auto shaken = run_hardened_wire_auction(w.config, ttp_b, w.locations,
                                                w.bids, bus_b, rng_b);

  EXPECT_TRUE(shaken.report.completed);
  EXPECT_EQ(shaken.report.survivors.size(), 8u);
  EXPECT_EQ(shaken.awards, clean.awards);
}

TEST(FaultsSession, DeterministicPerSeed) {
  const WireWorld w = make_world(10, 2, 61);
  FaultSpec spec;
  spec.drop = 0.15;
  spec.corrupt = 0.1;
  spec.delay = 0.2;

  const auto run = [&] {
    FaultInjector injector(99, spec);
    core::TrustedThirdParty ttp(w.config.bid, 5);
    MessageBus bus;
    bus.set_fault_injector(&injector);
    Rng rng(13);
    return run_hardened_wire_auction(w.config, ttp, w.locations, w.bids, bus,
                                     rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.awards, b.awards);
  EXPECT_EQ(a.report.survivors, b.report.survivors);
  EXPECT_EQ(excluded_users(a.report), excluded_users(b.report));
  EXPECT_EQ(a.report.faults.drops, b.report.faults.drops);
  EXPECT_EQ(a.report.summary(), b.report.summary());
}

TEST(FaultsIngest, IdenticalRedeliveryIsBenignDifferentIsEquivocation) {
  const WireWorld w = make_world(2, 2, 71);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 2);
  Rng rng(1);
  const SuClient client(0, w.config, ttp.su_keys());
  const Bytes loc = client.location_envelope(w.locations[0], rng);

  EXPECT_EQ(session.try_ingest(loc), AuctioneerSession::IngestResult::kAccepted);
  // Byte-identical re-arrival (network duplication): harmless.
  EXPECT_EQ(session.try_ingest(loc),
            AuctioneerSession::IngestResult::kDuplicateRedelivery);
  EXPECT_FALSE(session.is_excluded(0));

  // A second, different valid submission under the same SU id: the
  // duplicate-identity attack.  The sender is excluded for the round.
  const Bytes other = client.location_envelope(w.locations[1], rng);
  std::string error;
  EXPECT_EQ(session.try_ingest(other, &error),
            AuctioneerSession::IngestResult::kEquivocation);
  EXPECT_TRUE(session.is_excluded(0));
  EXPECT_FALSE(error.empty());

  // The round still completes for the honest SU.
  const SuClient honest(1, w.config, ttp.su_keys());
  session.try_ingest(honest.location_envelope(w.locations[1], rng));
  session.try_ingest(honest.bid_envelope(w.bids[1], rng));
  RoundReport report;
  session.finalize_participants(report);
  ASSERT_EQ(report.excluded.size(), 1u);
  EXPECT_EQ(report.excluded[0].user, 0u);
  EXPECT_EQ(report.excluded[0].reason,
            RoundReport::ExclusionReason::kEquivocation);
  EXPECT_EQ(session.participants(), (std::vector<std::size_t>{1}));
  Rng alloc_rng(2);
  EXPECT_NO_THROW(session.run_allocation(alloc_rng));
  for (const auto& award : session.awards()) {
    EXPECT_EQ(award.user, 1u);
  }
}

TEST(FaultsIngest, GarbageNeverWedgesTheSession) {
  const WireWorld w = make_world(1, 2, 81);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 1);
  Rng rng(1);

  EXPECT_EQ(session.try_ingest(Bytes{}),
            AuctioneerSession::IngestResult::kRejected);
  EXPECT_EQ(session.try_ingest(Bytes{0xFF, 0x00, 0x12}),
            AuctioneerSession::IngestResult::kRejected);
  // Strict ingest still throws for lock-step callers.
  EXPECT_THROW(session.ingest(Bytes{0xFF, 0x00, 0x12}), LppaError);

  const SuClient client(0, w.config, ttp.su_keys());
  EXPECT_EQ(session.try_ingest(client.location_envelope(w.locations[0], rng)),
            AuctioneerSession::IngestResult::kAccepted);
  EXPECT_EQ(session.try_ingest(client.bid_envelope(w.bids[0], rng)),
            AuctioneerSession::IngestResult::kAccepted);
  EXPECT_TRUE(session.ready());
}

TEST(FaultsIngest, NobodySurvivingIsATypedProtocolError) {
  const WireWorld w = make_world(2, 2, 91);
  AuctioneerSession session(w.config, 2);
  RoundReport report;
  try {
    session.finalize_participants(report);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

}  // namespace
}  // namespace lppa::proto

namespace lppa::sim {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.area_id = 3;
  cfg.fcc.rows = 30;
  cfg.fcc.cols = 30;
  cfg.fcc.num_channels = 12;
  cfg.num_users = 12;
  cfg.seed = 77;
  return cfg;
}

TEST(FaultsMultiRound, EveryRoundCompletesUnderSeededFaults) {
  Scenario scenario(small_config());
  MultiRoundConfig cfg;
  cfg.rounds = 2;
  cfg.faults.enabled = true;
  cfg.faults.seed = 1234;
  cfg.faults.link.drop = 0.10;
  cfg.faults.byzantine = {0, 5};

  const auto result = run_multi_round(scenario, cfg, 42);
  ASSERT_EQ(result.reports.size(), 2u);
  for (const auto& report : result.reports) {
    EXPECT_TRUE(report.completed) << report.summary();
    EXPECT_EQ(report.num_users, 12u);
    EXPECT_GE(report.survivors.size(), 10u);
    for (const auto& e : report.excluded) {
      EXPECT_TRUE(e.user == 0 || e.user == 5) << report.summary();
    }
    EXPECT_GT(report.faults.messages, 0u);
  }
}

TEST(FaultsMultiRound, FaultLayerDoesNotPerturbPrivacyMetrics) {
  Scenario with(small_config()), without(small_config());
  MultiRoundConfig cfg;
  cfg.rounds = 2;
  const auto baseline = run_multi_round(without, cfg, 42);
  cfg.faults.enabled = true;
  cfg.faults.link.drop = 0.10;
  cfg.faults.byzantine = {1};
  const auto faulted = run_multi_round(with, cfg, 42);
  EXPECT_EQ(faulted.metrics.failure_rate, baseline.metrics.failure_rate);
  EXPECT_EQ(faulted.mean_channels_used, baseline.mean_channels_used);
  EXPECT_TRUE(baseline.reports.empty());
}

}  // namespace
}  // namespace lppa::sim
