// Socket transport ≡ in-process bus: the round-semantics parity suite.
//
// The acceptance criterion of the socket port is byte-identity: at the
// same seed the socket round commits the same awards, charges and
// announcement bytes as the MessageBus round — clean, under transport
// fault injection of every class, and across auctioneer crashes at
// every journal checkpoint — with the SUs never rebuilding an envelope
// (at-least-once redelivery, exactly-once construction).
#include <gtest/gtest.h>

#include <set>

#include "net/session_port.h"
#include "obs/metrics.h"
#include "proto/fault.h"
#include "proto/session.h"

namespace lppa::net {
namespace {

struct WireWorld {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  core::LppaConfig config;
};

WireWorld make_world(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  WireWorld w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  w.config.num_channels = k;
  w.config.lambda = 100;
  w.config.coord_width = 14;
  w.config.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  w.config.ttp_batch_size = 4;
  return w;
}

constexpr std::uint64_t kTtpSeed = 77;
constexpr std::uint64_t kWireSeed = 5;

SocketAuctionResult run_socket(const WireWorld& w,
                               ServerConfig server_config = {},
                               SocketRoundOptions round = {},
                               proto::CrashInjector* crashes = nullptr,
                               SocketFaultInjector* faults = nullptr,
                               const std::vector<std::size_t>& exclude = {}) {
  core::TrustedThirdParty ttp(w.config.bid, kTtpSeed);
  return run_recoverable_socket_auction(w.config, ttp, w.locations, w.bids,
                                        kWireSeed, std::move(server_config),
                                        round, crashes, faults, exclude);
}

proto::RecoverableWireResult run_bus(
    const WireWorld& w, const proto::RecoverableSessionConfig& recov = {},
    const std::vector<std::size_t>& exclude = {}) {
  core::TrustedThirdParty ttp(w.config.bid, kTtpSeed);
  proto::MessageBus bus;
  return proto::run_recoverable_wire_auction(
      w.config, ttp, w.locations, w.bids, bus, kWireSeed, recov,
      /*crashes=*/nullptr, exclude);
}

TEST(SocketAuction, CleanRunMatchesBusByteIdentically) {
  const WireWorld w = make_world(10, 3, 21);
  const auto bus = run_bus(w);

  const auto socket = run_socket(w);

  ASSERT_TRUE(socket.report.completed) << socket.report.summary();
  EXPECT_FALSE(socket.report.degraded);
  EXPECT_EQ(socket.awards, bus.awards);
  EXPECT_EQ(socket.announcement, bus.announcement);
  EXPECT_EQ(socket.report.survivors, bus.report.survivors);
  EXPECT_EQ(socket.report.crash_recoveries, 0u);
  // Exactly one location+bid build per SU, and nobody had to reconnect.
  EXPECT_EQ(socket.envelopes_built, 2 * w.bids.size());
  EXPECT_EQ(socket.reconnects, 0u);

  // The hardened entry point is the same round without a crash layer.
  core::TrustedThirdParty ttp(w.config.bid, kTtpSeed);
  const auto hardened = run_hardened_socket_auction(
      w.config, ttp, w.locations, w.bids, kWireSeed, ServerConfig{});
  EXPECT_EQ(hardened.awards, bus.awards);
  EXPECT_EQ(hardened.announcement, bus.announcement);
}

TEST(SocketAuction, UnixDomainEndpointMatchesTcp) {
  const WireWorld w = make_world(8, 2, 23);
  const auto tcp = run_socket(w);

  ServerConfig uds;
  uds.endpoint = Endpoint::unix_path("/tmp/lppa_net_session_test.sock");
  const auto unix_run = run_socket(w, std::move(uds));

  EXPECT_EQ(unix_run.awards, tcp.awards);
  EXPECT_EQ(unix_run.announcement, tcp.announcement);
  EXPECT_EQ(unix_run.report.survivors, tcp.report.survivors);
}

TEST(SocketAuction, AckedSubmissionsDoNotPerturbTheRound) {
  const WireWorld w = make_world(6, 2, 25);
  const auto bus = run_bus(w);

  obs::MetricsRegistry metrics;
  ServerConfig acked;
  acked.ack_submissions = true;
  acked.metrics = &metrics;
  const auto socket = run_socket(w, std::move(acked));

  EXPECT_EQ(socket.awards, bus.awards);
  EXPECT_EQ(socket.announcement, bus.announcement);
}

// One run per fault class at probability 1.0: the transport mangles
// every frame until the per-SU budget is spent, and the round still
// converges to the clean awards — redelivery, reconnection and nack
// waves absorb all of it.
TEST(SocketFaultMatrix, EveryClassConvergesToCleanAwards) {
  const WireWorld w = make_world(8, 2, 33);
  const auto clean = run_bus(w);

  struct Case {
    const char* name;
    SocketFaultSpec spec;
    std::size_t SocketFaultCounters::*fired;
    bool forces_reconnect;
  };
  SocketFaultSpec truncate, reset, delay, duplicate, fragment;
  truncate.truncate = 1.0;
  reset.reset = 1.0;
  delay.delay = 1.0;
  delay.max_delay_ticks = 2;
  duplicate.duplicate = 1.0;
  fragment.fragment = 1.0;
  const Case cases[] = {
      {"truncate", truncate, &SocketFaultCounters::truncations, true},
      {"reset", reset, &SocketFaultCounters::resets, true},
      {"delay", delay, &SocketFaultCounters::delays, false},
      {"duplicate", duplicate, &SocketFaultCounters::duplicates, false},
      {"fragment", fragment, &SocketFaultCounters::fragments, false},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    SocketFaultSpec spec = c.spec;
    spec.max_faults_per_su = 3;
    SocketFaultInjector faults(/*seed=*/9, spec);

    const auto faulted = run_socket(w, {}, {}, nullptr, &faults);

    ASSERT_TRUE(faulted.report.completed) << faulted.report.summary();
    EXPECT_EQ(faulted.awards, clean.awards);
    EXPECT_EQ(faulted.announcement, clean.announcement);
    EXPECT_GT(faulted.socket_faults.*(c.fired), 0u);
    if (c.forces_reconnect) {
      EXPECT_GE(faulted.reconnects, 1u);
    }
    // Exactly-once construction regardless of how many times the bytes
    // were redelivered.
    EXPECT_EQ(faulted.envelopes_built, 2 * w.bids.size());
  }

  // All classes mixed in one round.
  SocketFaultSpec storm;
  storm.truncate = storm.reset = storm.delay = storm.duplicate =
      storm.fragment = 0.2;
  storm.max_faults_per_su = 4;
  SocketFaultInjector faults(/*seed=*/13, storm);
  const auto stormy = run_socket(w, {}, {}, nullptr, &faults);
  ASSERT_TRUE(stormy.report.completed) << stormy.report.summary();
  EXPECT_EQ(stormy.awards, clean.awards);
  EXPECT_EQ(stormy.announcement, clean.announcement);
  EXPECT_EQ(stormy.envelopes_built, 2 * w.bids.size());
}

// The crash matrix over sockets: kill the auctioneer at every (point,
// nth occurrence) a clean round reaches; recovery must republish
// byte-identical results from the journal alone, with the SUs only ever
// redelivering already-built bytes.  The scripted churn schedule makes
// the server apply depart/return operations while admission is open, so
// CrashPoint::kMidChurn is reached (once per operation) and crashes
// there — churn record durable, round unfinished — are part of the
// matrix like every other checkpoint.
TEST(SocketCrashMatrix, EveryCrashPointRecoversByteIdentically) {
  const WireWorld w = make_world(6, 2, 31);

  // SU 1 departs and returns (net no-op, but two journaled operations);
  // SUs 4 and 2 stay departed, so the round commits without them.
  SocketRoundOptions round;
  round.churn = {{/*depart=*/true, 1},
                 {/*depart=*/true, 4},
                 {/*depart=*/false, 1},
                 {/*depart=*/true, 2}};

  proto::CrashInjector counter;
  const auto clean = run_socket(w, {}, round, &counter);
  ASSERT_TRUE(clean.report.completed) << clean.report.summary();
  ASSERT_EQ(counter.crashes_fired(), 0u);
  ASSERT_GT(counter.total_hits(), 0u);
  for (std::size_t p = 0; p < proto::kNumCrashPoints; ++p) {
    const auto point = static_cast<proto::CrashPoint>(p);
    ASSERT_GT(counter.hits(point), 0u)
        << "crash point " << p << " never reached on the socket path";
  }
  // One kMidChurn checkpoint per scripted operation.
  ASSERT_EQ(counter.hits(proto::CrashPoint::kMidChurn), round.churn.size());

  // The churned socket round equals a bus round that excludes exactly
  // the finally-departed SUs (per-SU RNG streams are forked by index
  // either way).
  const auto bus = run_bus(w, {}, {2, 4});
  EXPECT_EQ(clean.awards, bus.awards);
  EXPECT_EQ(clean.announcement, bus.announcement);

  std::size_t runs = 0;
  for (std::size_t p = 0; p < proto::kNumCrashPoints; ++p) {
    const auto point = static_cast<proto::CrashPoint>(p);
    for (std::size_t nth = 0; nth < counter.hits(point); ++nth) {
      proto::CrashInjector injector;
      injector.arm(point, nth);
      const auto crashed = run_socket(w, {}, round, &injector);
      ++runs;

      ASSERT_EQ(injector.crashes_fired(), 1u) << "point " << p << " hit "
                                              << nth;
      ASSERT_TRUE(crashed.report.completed) << crashed.report.summary();
      EXPECT_EQ(crashed.report.crash_recoveries, 1u);
      EXPECT_GT(crashed.report.replayed_records, 0u);

      EXPECT_EQ(crashed.awards, clean.awards) << "point " << p << " hit "
                                              << nth;
      EXPECT_EQ(crashed.announcement, clean.announcement);
      EXPECT_EQ(crashed.report.survivors, clean.report.survivors);

      // Zero resubmission: the SUs built their envelopes exactly once;
      // everything the restarted server saw again was redelivered bytes,
      // absorbed as benign duplicates.
      EXPECT_EQ(crashed.envelopes_built, 2 * w.bids.size());
    }
  }
  // 6 SUs x 2 submissions + finalize + allocation + charge batches +
  // publish: a real matrix, not a spot check.
  EXPECT_GE(runs, 16u);
}

TEST(SocketDeadline, MutedSuDegradesToQuorumDeterministically) {
  const WireWorld w = make_world(8, 2, 51);
  const std::size_t silent_su = 3;

  // The targeted mute makes the silent party deterministic over a
  // wall-clock transport: SU 3's frames never reach the socket, however
  // the retries land.
  SocketFaultSpec spec;
  spec.mute_su = silent_su;
  SocketFaultInjector faults(/*seed=*/1, spec);

  SocketRoundOptions round;
  round.deadline_ticks = 100;
  round.min_quorum = 2;
  round.hardened.max_retries = 20;  // the deadline fires first
  round.hardened.backoff_base_ticks = 4;

  const auto degraded = run_socket(w, {}, round, nullptr, &faults);

  ASSERT_TRUE(degraded.report.completed) << degraded.report.summary();
  EXPECT_TRUE(degraded.report.degraded);
  EXPECT_GT(degraded.report.retry_waves, 0u);
  EXPECT_GE(degraded.report.ticks_used, 100u);
  EXPECT_GE(degraded.socket_faults.mutes, 2u);

  ASSERT_EQ(degraded.report.excluded.size(), 1u);
  EXPECT_EQ(degraded.report.excluded[0].user, silent_su);
  EXPECT_EQ(degraded.report.excluded[0].reason,
            proto::RoundReport::ExclusionReason::kTimeout);
  EXPECT_EQ(degraded.report.survivors.size(), w.bids.size() - 1);

  // The degraded quorum commit equals a bus round that excludes exactly
  // the SU the socket round lost (SU randomness is forked by index
  // either way).
  const auto clean = run_bus(w, {}, {silent_su});
  EXPECT_EQ(degraded.awards, clean.awards);
}

TEST(SocketDeadline, QuorumNotMetIsTypedProtocolError) {
  const WireWorld w = make_world(4, 2, 61);

  SocketFaultSpec spec;
  spec.mute_su = 0;
  SocketFaultInjector faults(/*seed=*/1, spec);

  SocketRoundOptions round;
  round.deadline_ticks = 50;
  round.min_quorum = 4;  // the muted SU can never arrive
  round.hardened.max_retries = 20;
  round.hardened.backoff_base_ticks = 2;

  try {
    run_socket(w, {}, round, nullptr, &faults);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(SocketDeadline, DelayBudgetPastDeadlineIsTypedConfigError) {
  // Direct: the injector re-uses the bus-level rule (satellite 2).
  SocketFaultSpec spec;
  spec.delay = 0.5;
  spec.max_delay_ticks = 10;
  SocketFaultInjector faults(/*seed=*/3, spec);
  EXPECT_NO_THROW(faults.require_within_deadline(0));   // no deadline
  EXPECT_NO_THROW(faults.require_within_deadline(11));  // delay fits
  try {
    faults.require_within_deadline(5);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument);
  }

  // And the round driver applies it before touching a socket.
  const WireWorld w = make_world(2, 2, 71);
  SocketRoundOptions round;
  round.deadline_ticks = 5;
  try {
    run_socket(w, {}, round, nullptr, &faults);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument);
  }
}

TEST(SocketDeadline, ExcludedSusConsumeRngStreamsLikeTheBus) {
  // `exclude` parity: a socket round without SU 2 equals a bus round
  // without SU 2 — the index-ordered RNG forks keep everyone else's
  // submissions byte-identical.
  const WireWorld w = make_world(6, 2, 81);
  const auto bus = run_bus(w, {}, {2});
  const auto socket = run_socket(w, {}, {}, nullptr, nullptr, {2});
  EXPECT_EQ(socket.awards, bus.awards);
  EXPECT_EQ(socket.announcement, bus.announcement);
  EXPECT_EQ(socket.envelopes_built, 2 * (w.bids.size() - 1));
}

}  // namespace
}  // namespace lppa::net
