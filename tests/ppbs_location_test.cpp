#include "core/ppbs_location.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lppa::core {
namespace {

struct PpbsLocationTest : ::testing::Test {
  Rng rng{55};
  crypto::SecretKey g0 = crypto::SecretKey::generate(rng);
};

TEST_F(PpbsLocationTest, ConflictMatchesPlaintextPredicate) {
  const std::uint64_t lambda = 30;
  const PpbsLocation protocol(g0, 12, lambda);
  for (int round = 0; round < 200; ++round) {
    const auction::SuLocation a{rng.below(3000), rng.below(3000)};
    const auction::SuLocation b{rng.below(3000), rng.below(3000)};
    const auto sa = protocol.submit(a, rng);
    const auto sb = protocol.submit(b, rng);
    EXPECT_EQ(PpbsLocation::conflicts(sa, sb),
              auction::locations_conflict(a, b, lambda))
        << "a=(" << a.x << "," << a.y << ") b=(" << b.x << "," << b.y << ")";
  }
}

TEST_F(PpbsLocationTest, ConflictCheckIsSymmetric) {
  const PpbsLocation protocol(g0, 12, 25);
  for (int round = 0; round < 100; ++round) {
    const auction::SuLocation a{rng.below(3000), rng.below(3000)};
    const auction::SuLocation b{rng.below(3000), rng.below(3000)};
    const auto sa = protocol.submit(a, rng);
    const auto sb = protocol.submit(b, rng);
    EXPECT_EQ(PpbsLocation::conflicts(sa, sb),
              PpbsLocation::conflicts(sb, sa));
  }
}

TEST_F(PpbsLocationTest, BoundaryClampNearOrigin) {
  // Location closer to 0 than 2*lambda: the range clamps at 0 and the
  // predicate still matches plaintext.
  const std::uint64_t lambda = 50;
  const PpbsLocation protocol(g0, 12, lambda);
  const auction::SuLocation origin_hugger{10, 5};
  const auction::SuLocation near{60, 80};
  const auction::SuLocation far{300, 300};
  const auto s0 = protocol.submit(origin_hugger, rng);
  const auto s1 = protocol.submit(near, rng);
  const auto s2 = protocol.submit(far, rng);
  EXPECT_TRUE(PpbsLocation::conflicts(s0, s1));
  EXPECT_FALSE(PpbsLocation::conflicts(s0, s2));
}

TEST_F(PpbsLocationTest, GraphMatchesPlaintextGraph) {
  const std::uint64_t lambda = 40;
  const PpbsLocation protocol(g0, 13, lambda);
  std::vector<auction::SuLocation> locs;
  std::vector<LocationSubmission> subs;
  for (int i = 0; i < 30; ++i) {
    locs.push_back({rng.below(2000), rng.below(2000)});
    subs.push_back(protocol.submit(locs.back(), rng));
  }
  const auto masked = PpbsLocation::build_conflict_graph(subs);
  const auto plain = auction::ConflictGraph::from_locations(locs, lambda);
  EXPECT_EQ(masked, plain);
}

TEST_F(PpbsLocationTest, RangesPaddedToWorstCase) {
  const int width = 12;
  const PpbsLocation protocol(g0, width, 10, /*pad_ranges=*/true);
  const auto s = protocol.submit({500, 600}, rng);
  EXPECT_EQ(s.x_range.size(), prefix::max_range_prefixes(width));
  EXPECT_EQ(s.y_range.size(), prefix::max_range_prefixes(width));
  // Value families are fixed-size anyway (w+1).
  EXPECT_EQ(s.x_family.size(), static_cast<std::size_t>(width) + 1);
}

TEST_F(PpbsLocationTest, UnpaddedModeLeaksCardinality) {
  const PpbsLocation protocol(g0, 12, 10, /*pad_ranges=*/false);
  const auto a = protocol.submit({512, 512}, rng);   // aligned range
  const auto b = protocol.submit({1000, 999}, rng);  // ragged range
  // Without padding, range cardinalities differ between users — exactly
  // the side channel fix (v) closes.
  EXPECT_NE(a.x_range.size(), b.x_range.size());
}

TEST_F(PpbsLocationTest, SubmissionRejectsCoordinateOverflow) {
  const PpbsLocation protocol(g0, 8, 10);  // coords + 20 must fit 8 bits
  EXPECT_NO_THROW(protocol.submit({200, 200}, rng));
  EXPECT_THROW(protocol.submit({250, 10}, rng), LppaError);
}

TEST_F(PpbsLocationTest, ConstructorValidatesParameters) {
  EXPECT_THROW(PpbsLocation(g0, 0, 10), LppaError);
  EXPECT_THROW(PpbsLocation(g0, 63, 10), LppaError);
  EXPECT_THROW(PpbsLocation(g0, 4, 8), LppaError);  // 2*8 = 16 > 15
}

TEST_F(PpbsLocationTest, SerializeRoundTrip) {
  const PpbsLocation protocol(g0, 12, 30);
  const auto s = protocol.submit({123, 456}, rng);
  const Bytes wire = s.serialize();
  EXPECT_EQ(wire.size(), s.wire_size());
  const auto restored = LocationSubmission::deserialize(wire);
  EXPECT_EQ(restored, s);
}

TEST_F(PpbsLocationTest, DeserializeRejectsTrailingBytes) {
  const PpbsLocation protocol(g0, 12, 30);
  Bytes wire = protocol.submit({123, 456}, rng).serialize();
  wire.push_back(0);
  EXPECT_THROW(LocationSubmission::deserialize(wire), LppaError);
}

TEST_F(PpbsLocationTest, DifferentKeysBreakTheProtocol) {
  // Submissions masked under different keys never look conflicting —
  // the auctioneer cannot correlate across key epochs.
  const PpbsLocation p1(g0, 12, 30);
  const crypto::SecretKey other = crypto::SecretKey::generate(rng);
  const PpbsLocation p2(other, 12, 30);
  const auto sa = p1.submit({100, 100}, rng);
  const auto sb = p2.submit({100, 100}, rng);
  EXPECT_FALSE(PpbsLocation::conflicts(sa, sb));
}

TEST_F(PpbsLocationTest, LambdaZeroMeansExactCollision) {
  const PpbsLocation protocol(g0, 12, 0);
  const auto a = protocol.submit({77, 88}, rng);
  const auto b = protocol.submit({77, 88}, rng);
  const auto c = protocol.submit({77, 89}, rng);
  EXPECT_TRUE(PpbsLocation::conflicts(a, b));
  EXPECT_FALSE(PpbsLocation::conflicts(a, c));
}

}  // namespace
}  // namespace lppa::core
