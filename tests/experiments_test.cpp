#include "sim/experiments.h"

#include <gtest/gtest.h>

#include "core/theorems.h"

namespace lppa::sim {
namespace {

ScenarioConfig small_config(std::size_t users = 20) {
  ScenarioConfig cfg;
  cfg.area_id = 4;
  cfg.fcc.rows = 25;
  cfg.fcc.cols = 25;
  cfg.fcc.num_channels = 8;
  cfg.num_users = users;
  cfg.seed = 9;
  return cfg;
}

TEST(RunAttackPoint, BcmNeverFailsOnTruthfulBids) {
  const Scenario s(small_config());
  const auto point = run_attack_point(s, 8, 0.5, 0);
  EXPECT_DOUBLE_EQ(point.bcm.failure_rate, 0.0);
  EXPECT_EQ(point.bcm.samples, 20u);
}

TEST(RunAttackPoint, BpmShrinksTheCandidateSet) {
  const Scenario s(small_config());
  const auto point = run_attack_point(s, 8, 0.25, 0);
  EXPECT_LT(point.bpm.mean_possible_cells, point.bcm.mean_possible_cells);
  EXPECT_LE(point.bpm.mean_uncertainty_nats, point.bcm.mean_uncertainty_nats);
}

TEST(RunAttackPoint, MoreChannelsSharpenBcm) {
  const Scenario s(small_config());
  const auto few = run_attack_point(s, 2, 1.0, 0);
  const auto many = run_attack_point(s, 8, 1.0, 0);
  EXPECT_LE(many.bcm.mean_possible_cells, few.bcm.mean_possible_cells);
}

TEST(RunAttackPoint, CellCapBindsTheOutput) {
  const Scenario s(small_config());
  const auto point = run_attack_point(s, 8, 1.0, 5);
  EXPECT_LE(point.bpm.mean_possible_cells, 5.0);
}

TEST(RunDefensePoint, ProducesAllThreeViews) {
  const Scenario s(small_config());
  DefenseOptions opts;
  opts.replace_prob = 0.5;
  opts.top_fraction = 0.5;
  const auto point = run_defense_point(s, opts, 31);
  EXPECT_EQ(point.plain_bcm.samples, 20u);
  EXPECT_EQ(point.plain_bpm.samples, 20u);
  EXPECT_EQ(point.lppa.samples, 20u);
  // Unprotected BCM on truthful bids never fails; the LPPA-side attack
  // has a strictly harder job.
  EXPECT_DOUBLE_EQ(point.plain_bcm.failure_rate, 0.0);
  EXPECT_GE(point.lppa.failure_rate, point.plain_bcm.failure_rate);
}

TEST(RunDefensePoint, DeterministicPerSeed) {
  const Scenario s(small_config());
  DefenseOptions opts;
  const auto a = run_defense_point(s, opts, 7);
  const auto b = run_defense_point(s, opts, 7);
  EXPECT_EQ(a.lppa.failure_rate, b.lppa.failure_rate);
  EXPECT_EQ(a.lppa.mean_possible_cells, b.lppa.mean_possible_cells);
}

TEST(MakeSubmissions, OnePerUser) {
  const Scenario s(small_config());
  const auto cfg = core::PpbsBidConfig::advanced(
      s.config().bmax, 3, 4, core::ZeroDisguisePolicy::none(s.config().bmax));
  const core::TrustedThirdParty ttp(cfg, 3);
  const auto subs = make_submissions(s, cfg, ttp.su_keys(), 5);
  ASSERT_EQ(subs.size(), 20u);
  for (const auto& sub : subs) EXPECT_EQ(sub.channels.size(), 8u);
}

TEST(RunPerformancePoint, RatiosAreSane) {
  Scenario s(small_config(15));
  const auto point = run_performance_point(s, 0.3, 3, 4, 2, 13);
  EXPECT_EQ(point.num_users, 15u);
  EXPECT_GE(point.bid_sum_ratio, 0.0);
  EXPECT_LE(point.bid_sum_ratio, 1.2);  // small-sample tie noise tolerated
  EXPECT_GE(point.plain_satisfaction, 0.0);
  EXPECT_LE(point.plain_satisfaction, 1.0);
  EXPECT_GE(point.lppa_satisfaction, 0.0);
  EXPECT_LE(point.lppa_satisfaction, 1.0);
}

TEST(RunPerformancePoint, ZeroReplaceProbPreservesPerformance) {
  Scenario s(small_config(40));
  const auto point = run_performance_point(s, 0.0, 3, 4, 4, 17);
  // Without disguise the only differences are tie-breaks among equal
  // bids (the masked table breaks ties by random cr-slot, the plain one
  // keeps the first user), which can flip individual awards.
  EXPECT_NEAR(point.bid_sum_ratio, 1.0, 0.1);
  EXPECT_NEAR(point.satisfaction_ratio, 1.0, 0.15);
}

TEST(RunPerformancePoint, FullDisguiseHurtsRevenue) {
  Scenario s(small_config(25));
  const auto none = run_performance_point(s, 0.0, 3, 4, 3, 19);
  const auto full = run_performance_point(s, 1.0, 3, 4, 3, 19);
  EXPECT_LT(full.bid_sum_ratio, none.bid_sum_ratio);
}

TEST(MeasureCommCost, DigestVolumeMatchesTheorem4Exactly) {
  // Our instantiation transmits exactly (w+1) + (2w-2) digests of 256
  // bits per (user, channel): the measured digest volume must equal the
  // Theorem 4 prediction with h = 256/(w+1) to the bit.
  const auto row = measure_comm_cost(5, 4, 15, 3, 4, 23);
  EXPECT_DOUBLE_EQ(row.measured_digest_bits, row.predicted_bits);
  EXPECT_GT(row.measured_wire_bits, row.measured_digest_bits);  // framing
}

TEST(MeasureCommCost, ScalesLinearly) {
  const auto base = measure_comm_cost(4, 3, 15, 3, 4, 29);
  const auto double_users = measure_comm_cost(8, 3, 15, 3, 4, 29);
  EXPECT_DOUBLE_EQ(double_users.predicted_bits, 2 * base.predicted_bits);
  EXPECT_DOUBLE_EQ(double_users.measured_digest_bits,
                   2 * base.measured_digest_bits);
}

TEST(RunDefenseSweepRepeated, AveragesAcrossResamples) {
  Scenario s(small_config());
  DefenseOptions opts;
  const std::vector<double> replaces = {0.3};
  const std::vector<double> fractions = {0.5};
  const auto repeated =
      run_defense_sweep_repeated(s, 3, replaces, fractions, opts, 11);
  ASSERT_EQ(repeated.points.size(), 1u);
  // Three repetitions of 20 users each.
  EXPECT_EQ(repeated.points[0].lppa.samples, 60u);
  EXPECT_EQ(repeated.plain_bcm.samples, 60u);
  EXPECT_GE(repeated.points[0].lppa.failure_rate, 0.0);
  EXPECT_LE(repeated.points[0].lppa.failure_rate, 1.0);
}

TEST(RunDefenseSweepRepeated, OneRepetitionMatchesSingleSweep) {
  Scenario s1(small_config()), s2(small_config());
  DefenseOptions opts;
  const std::vector<double> replaces = {0.5};
  const std::vector<double> fractions = {0.5};
  s2.resample_users(21 + 7919 * 0);  // mirror the repetition reseed
  const auto single = run_defense_sweep(s2, replaces, fractions, opts, 21);
  const auto repeated =
      run_defense_sweep_repeated(s1, 1, replaces, fractions, opts, 21);
  EXPECT_EQ(repeated.points[0].lppa.failure_rate,
            single.points[0].lppa.failure_rate);
  EXPECT_EQ(repeated.points[0].lppa.mean_possible_cells,
            single.points[0].lppa.mean_possible_cells);
}

TEST(RunDefenseSweepRepeated, RejectsZeroRepetitions) {
  Scenario s(small_config());
  EXPECT_THROW(
      run_defense_sweep_repeated(s, 0, {0.5}, {0.5}, DefenseOptions{}, 1),
      LppaError);
}

TEST(RunPerformancePoint, RequiresRounds) {
  Scenario s(small_config(5));
  EXPECT_THROW(run_performance_point(s, 0.5, 3, 4, 0, 1), LppaError);
}

}  // namespace
}  // namespace lppa::sim
