#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lppa::crypto {
namespace {

SecretKey rfc_key() {
  Bytes key_bytes(32);
  for (std::size_t i = 0; i < 32; ++i) key_bytes[i] = static_cast<std::uint8_t>(i);
  return SecretKey::from_bytes(key_bytes);
}

// RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, counter 1.
TEST(ChaCha20, Rfc8439BlockVector) {
  const Nonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = chacha20_block(rfc_key(), nonce, 1);
  EXPECT_EQ(to_hex(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2: the "sunscreen" plaintext under counter 1.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  const Nonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes pt(plaintext.begin(), plaintext.end());
  const Bytes ct = chacha20_xor(rfc_key(), nonce, 1, pt);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

// RFC 8439 Appendix A.1 test vector #1: all-zero key and nonce,
// counter 0.
TEST(ChaCha20, Rfc8439AppendixA1Vector1) {
  const SecretKey key = SecretKey::from_bytes(Bytes(32, 0));
  const Nonce nonce{};
  const auto block = chacha20_block(key, nonce, 0);
  EXPECT_EQ(to_hex(block),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586");
}

// RFC 8439 Appendix A.1 test vector #2: same key/nonce, counter 1.
TEST(ChaCha20, Rfc8439AppendixA1Vector2) {
  const SecretKey key = SecretKey::from_bytes(Bytes(32, 0));
  const Nonce nonce{};
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex(block),
            "9f07e7be5551387a98ba977c732d080dcb0f29a048e3656912c6533e32ee7aed"
            "29b721769ce64e43d57133b074d839d531ed1f28510afb45ace10a1f4b794d6f");
}

// RFC 8439 Appendix A.1 test vector #4: key with one bit set.
TEST(ChaCha20, Rfc8439AppendixA1Vector4) {
  Bytes key_bytes(32, 0);
  key_bytes[1] = 0xff;
  const SecretKey key = SecretKey::from_bytes(key_bytes);
  const Nonce nonce{};
  const auto block = chacha20_block(key, nonce, 2);
  EXPECT_EQ(to_hex(block),
            "72d54dfbf12ec44b362692df94137f328fea8da73990265ec1bbbea1ae9af0ca"
            "13b25aa26cb4a648cb9b9d1be65b2c0924a66c54d545ec1b7374f4872e99f096");
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  lppa::Rng rng(1);
  const SecretKey key = SecretKey::generate(rng);
  const Nonce nonce = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  Bytes msg(300);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
  const Bytes ct = chacha20_xor(key, nonce, 0, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20_xor(key, nonce, 0, ct), msg);
}

TEST(ChaCha20, EmptyMessage) {
  lppa::Rng rng(2);
  const SecretKey key = SecretKey::generate(rng);
  const Nonce nonce{};
  EXPECT_TRUE(chacha20_xor(key, nonce, 0, Bytes{}).empty());
}

TEST(ChaCha20, CounterAdvancesPerBlock) {
  lppa::Rng rng(3);
  const SecretKey key = SecretKey::generate(rng);
  const Nonce nonce{};
  // Encrypting 128 zero bytes from counter 0 equals the concatenation of
  // blocks 0 and 1.
  const Bytes zeros(128, 0);
  const Bytes stream = chacha20_xor(key, nonce, 0, zeros);
  const auto b0 = chacha20_block(key, nonce, 0);
  const auto b1 = chacha20_block(key, nonce, 1);
  Bytes expected(b0.begin(), b0.end());
  expected.insert(expected.end(), b1.begin(), b1.end());
  EXPECT_EQ(stream, expected);
}

TEST(ChaCha20, DifferentNoncesDifferentStreams) {
  lppa::Rng rng(4);
  const SecretKey key = SecretKey::generate(rng);
  Nonce n1{}, n2{};
  n2[11] = 1;
  const Bytes zeros(64, 0);
  EXPECT_NE(chacha20_xor(key, n1, 0, zeros), chacha20_xor(key, n2, 0, zeros));
}

TEST(ChaCha20, DifferentKeysDifferentStreams) {
  lppa::Rng rng(5);
  const SecretKey k1 = SecretKey::generate(rng);
  const SecretKey k2 = SecretKey::generate(rng);
  const Nonce nonce{};
  const Bytes zeros(64, 0);
  EXPECT_NE(chacha20_xor(k1, nonce, 0, zeros),
            chacha20_xor(k2, nonce, 0, zeros));
}

TEST(ChaCha20, NonBlockMultipleLengths) {
  lppa::Rng rng(6);
  const SecretKey key = SecretKey::generate(rng);
  const Nonce nonce = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  for (std::size_t len : {1u, 63u, 64u, 65u, 100u, 200u}) {
    Bytes msg(len, 0x42);
    const Bytes ct = chacha20_xor(key, nonce, 7, msg);
    ASSERT_EQ(ct.size(), len);
    EXPECT_EQ(chacha20_xor(key, nonce, 7, ct), msg) << "len " << len;
  }
}

}  // namespace
}  // namespace lppa::crypto
