#include "auction/plain_auction.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lppa::auction {
namespace {

TEST(AuctionOutcome, WinningBidSumSkipsInvalid) {
  AuctionOutcome o;
  o.awards = {{0, 0, 5, true}, {1, 1, 3, false}, {2, 2, 7, true}};
  EXPECT_EQ(o.winning_bid_sum(), 12u);
}

TEST(AuctionOutcome, SatisfiedWinnersRequirePositiveValidCharge) {
  AuctionOutcome o;
  o.awards = {{0, 0, 5, true}, {1, 1, 0, true}, {2, 2, 7, false}};
  EXPECT_EQ(o.satisfied_winners(), 1u);
}

TEST(AuctionOutcome, SatisfactionRatio) {
  AuctionOutcome o;
  o.awards = {{0, 0, 5, true}, {1, 1, 4, true}};
  EXPECT_DOUBLE_EQ(o.user_satisfaction(8), 0.25);
  EXPECT_DOUBLE_EQ(o.user_satisfaction(0), 0.0);
}

TEST(CountInterested, CountsUsersWithAnyPositiveBid) {
  EXPECT_EQ(count_interested({{0, 0}, {0, 3}, {1, 0}, {0, 0}}), 2u);
  EXPECT_EQ(count_interested({}), 0u);
}

TEST(PlainAuction, RejectsBadConfigs) {
  EXPECT_THROW(PlainAuction(0, 5), LppaError);
  PlainAuction a(2, 5);
  Rng rng(1);
  EXPECT_THROW(a.run({{0, 0}}, {}, rng), LppaError);
  EXPECT_THROW(a.run({{0, 0}}, {{1, 2}, {3, 4}}, rng), LppaError);
}

TEST(PlainAuction, FirstPriceChargesTrueBid) {
  PlainAuction a(1, 5);
  Rng rng(1);
  const auto outcome = a.run({{0, 0}, {1000, 1000}}, {{4}, {9}}, rng);
  ASSERT_EQ(outcome.awards.size(), 2u);
  for (const auto& award : outcome.awards) {
    const Money expected = award.user == 0 ? 4u : 9u;
    EXPECT_EQ(award.charge, expected);
    EXPECT_TRUE(award.valid);
  }
  EXPECT_EQ(outcome.winning_bid_sum(), 13u);
}

TEST(PlainAuction, ZeroBidWinIsInvalid) {
  PlainAuction a(1, 5);
  Rng rng(1);
  const auto outcome = a.run({{0, 0}}, {{0}}, rng);
  ASSERT_EQ(outcome.awards.size(), 1u);
  EXPECT_FALSE(outcome.awards[0].valid);
  EXPECT_EQ(outcome.winning_bid_sum(), 0u);
  EXPECT_EQ(outcome.satisfied_winners(), 0u);
}

TEST(PlainAuction, ConflictingUsersDoNotShareChannel) {
  PlainAuction a(1, 50);
  Rng rng(2);
  // Both users within 2*lambda: only the higher bid wins.
  const auto outcome = a.run({{100, 100}, {120, 110}}, {{3}, {8}}, rng);
  ASSERT_EQ(outcome.awards.size(), 1u);
  EXPECT_EQ(outcome.awards[0].user, 1u);
}

TEST(PlainAuction, DistantUsersReuseChannel) {
  PlainAuction a(1, 50);
  Rng rng(2);
  const auto outcome = a.run({{0, 0}, {100000, 100000}}, {{3}, {8}}, rng);
  EXPECT_EQ(outcome.awards.size(), 2u);
}

TEST(PlainAuction, DeterministicForFixedSeed) {
  PlainAuction a(3, 20);
  Rng rng1(9), rng2(9);
  std::vector<SuLocation> locs = {{0, 0}, {50, 50}, {500, 500}, {900, 900}};
  std::vector<BidVector> bids = {
      {1, 5, 3}, {4, 2, 8}, {7, 7, 1}, {2, 9, 6}};
  const auto o1 = a.run(locs, bids, rng1);
  const auto o2 = a.run(locs, bids, rng2);
  EXPECT_EQ(o1.awards, o2.awards);
}

TEST(PlainAuction, RevenueNeverExceedsSumOfAllBids) {
  Rng rng(11);
  PlainAuction a(4, 100);
  std::vector<SuLocation> locs;
  std::vector<BidVector> bids;
  Money total = 0;
  for (int i = 0; i < 25; ++i) {
    locs.push_back({rng.below(2000), rng.below(2000)});
    BidVector bv(4);
    for (auto& b : bv) {
      b = rng.below(16);
      total += b;
    }
    bids.push_back(bv);
  }
  Rng run_rng(12);
  const auto outcome = a.run(locs, bids, run_rng);
  EXPECT_LE(outcome.winning_bid_sum(), total);
}

}  // namespace
}  // namespace lppa::auction
