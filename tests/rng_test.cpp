#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace lppa {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveStreamSeed, Deterministic) {
  EXPECT_EQ(derive_stream_seed(42, 0x6730),
            derive_stream_seed(42, 0x6730));
}

TEST(DeriveStreamSeed, DistinctDomainsGiveDistinctStreams) {
  // The TTP's three key-derivation domains must never collide for the
  // same base seed, and the streams they seed must actually diverge.
  const std::uint64_t s = 2026;
  const std::uint64_t g0 = derive_stream_seed(s, 0x6730);
  const std::uint64_t gb = derive_stream_seed(s, 0x67626d6173746572ULL);
  const std::uint64_t gc = derive_stream_seed(s, 0x6763);
  EXPECT_NE(g0, gb);
  EXPECT_NE(g0, gc);
  EXPECT_NE(gb, gc);
  Rng a(g0), b(gb);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(DeriveStreamSeed, NotTheInvertibleXorIdiom) {
  // The defect this derivation replaces: with `seed ^ domain`, the seeds
  // s and s ^ d produced byte-identical "independent" streams, because
  // (s ^ d) ^ 0 == s ^ d.  The SplitMix64 round before the domain mix
  // breaks that constructible identity.
  const std::uint64_t s = 0x123456789abcdef0ULL;
  const std::uint64_t d = 0x6730;
  EXPECT_NE(derive_stream_seed(s, d), derive_stream_seed(s ^ d, 0));
  EXPECT_NE(derive_stream_seed(s, d), s ^ d);
}

TEST(DeriveStreamSeed, ManySeedDomainPairsCollisionFree) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 64; ++s) {
    for (std::uint64_t d = 0; d < 64; ++d) {
      seen.insert(derive_stream_seed(s, d));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), LppaError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_int(3, 2), LppaError);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(-0.1), LppaError);
  EXPECT_THROW(rng.bernoulli(1.1), LppaError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(19);
  EXPECT_THROW(rng.normal(0.0, -1.0), LppaError);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(23);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), LppaError);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), LppaError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream should not simply mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesTinyContainers) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

// Chi-square-style uniformity sweep over several seeds and bucket counts.
class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, BelowIsApproximatelyUniform) {
  Rng rng(GetParam());
  constexpr std::size_t kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof; 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(1, 2, 3, 42, 1234, 99991));

}  // namespace
}  // namespace lppa
