#include "sim/scenario.h"

#include "auction/plain_auction.h"

#include <gtest/gtest.h>

namespace lppa::sim {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.area_id = 4;
  cfg.fcc.rows = 30;
  cfg.fcc.cols = 30;
  cfg.fcc.num_channels = 10;
  cfg.num_users = 25;
  cfg.seed = 5;
  return cfg;
}

TEST(QuantizeBid, ZeroQualityBidsZero) {
  Rng rng(1);
  EXPECT_EQ(quantize_bid(0.0, 1.0, 15, 0.2, rng), 0u);
}

TEST(QuantizeBid, FullQualityNoNoiseBidsFullPrice) {
  Rng rng(1);
  EXPECT_EQ(quantize_bid(1.0, 1.0, 15, 0.0, rng), 15u);
}

TEST(QuantizeBid, StaysWithinBmax) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(quantize_bid(rng.uniform01(), rng.uniform(0.5, 1.0), 15, 0.2,
                           rng),
              15u);
  }
}

TEST(QuantizeBid, ScalesWithQuality) {
  Rng rng(3);
  EXPECT_GT(quantize_bid(0.9, 1.0, 15, 0.0, rng),
            quantize_bid(0.2, 1.0, 15, 0.0, rng));
}

TEST(QuantizeBid, RejectsInvalidInputs) {
  Rng rng(4);
  EXPECT_THROW(quantize_bid(-0.1, 1.0, 15, 0.2, rng), LppaError);
  EXPECT_THROW(quantize_bid(1.1, 1.0, 15, 0.2, rng), LppaError);
  EXPECT_THROW(quantize_bid(0.5, -1.0, 15, 0.2, rng), LppaError);
}

TEST(Scenario, BuildsDeterministically) {
  const Scenario a(small_config());
  const Scenario b(small_config());
  ASSERT_EQ(a.users().size(), b.users().size());
  for (std::size_t i = 0; i < a.users().size(); ++i) {
    EXPECT_EQ(a.users()[i].cell, b.users()[i].cell);
    EXPECT_EQ(a.users()[i].loc, b.users()[i].loc);
    EXPECT_EQ(a.users()[i].bids, b.users()[i].bids);
  }
}

TEST(Scenario, UserCountAndBidShape) {
  const Scenario s(small_config());
  EXPECT_EQ(s.users().size(), 25u);
  for (const auto& su : s.users()) {
    EXPECT_EQ(su.bids.size(), 10u);
  }
  EXPECT_EQ(s.locations().size(), 25u);
  EXPECT_EQ(s.bids().size(), 25u);
}

TEST(Scenario, BidsRespectAvailabilityAndBmax) {
  const auto cfg = small_config();
  const Scenario s(cfg);
  for (const auto& su : s.users()) {
    const std::size_t cell = s.dataset().grid().index(su.cell);
    for (std::size_t r = 0; r < su.bids.size(); ++r) {
      EXPECT_LE(su.bids[r], cfg.bmax);
      if (!s.dataset().availability(r).contains(cell)) {
        EXPECT_EQ(su.bids[r], 0u) << "bid on unavailable channel";
      }
    }
  }
}

TEST(Scenario, LocationsLieInsideTheirCell) {
  const Scenario s(small_config());
  const auto& grid = s.dataset().grid();
  for (const auto& su : s.users()) {
    const geo::Cell derived = grid.cell_of(
        {static_cast<double>(su.loc.x), static_cast<double>(su.loc.y)});
    // Quantisation to integer metres can push a point at most 1 m; that
    // never crosses more than one cell boundary with 750 m cells.
    EXPECT_LE(std::abs(derived.row - su.cell.row), 0);
    EXPECT_LE(std::abs(derived.col - su.cell.col), 0);
  }
}

TEST(Scenario, BetaWithinConfiguredRange) {
  const auto cfg = small_config();
  const Scenario s(cfg);
  for (const auto& su : s.users()) {
    EXPECT_GE(su.beta, cfg.beta_min);
    EXPECT_LE(su.beta, cfg.beta_max);
  }
}

TEST(Scenario, ResampleChangesUsersKeepsDataset) {
  Scenario s(small_config());
  const auto before = s.users();
  const auto avail_before = s.dataset().availability(0);
  s.resample_users(999);
  EXPECT_EQ(s.dataset().availability(0), avail_before);
  bool any_moved = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (!(s.users()[i].cell == before[i].cell)) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(Scenario, ResampleWithSameSeedReproduces) {
  Scenario s(small_config());
  s.resample_users(77);
  const auto first = s.users();
  s.resample_users(78);
  s.resample_users(77);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(s.users()[i].loc, first[i].loc);
    EXPECT_EQ(s.users()[i].bids, first[i].bids);
  }
}

TEST(Scenario, CoordWidthCoversCoordinatesPlusInterference) {
  const auto cfg = small_config();
  const Scenario s(cfg);
  const int w = s.coord_width();
  const std::uint64_t limit = (std::uint64_t{1} << w) - 1;
  for (const auto& su : s.users()) {
    EXPECT_LE(su.loc.x + 2 * cfg.lambda_m, limit);
    EXPECT_LE(su.loc.y + 2 * cfg.lambda_m, limit);
  }
}

TEST(Scenario, RejectsBadConfigs) {
  auto cfg = small_config();
  cfg.num_users = 0;
  EXPECT_THROW(Scenario{cfg}, LppaError);
  cfg = small_config();
  cfg.beta_min = 0.0;
  EXPECT_THROW(Scenario{cfg}, LppaError);
  cfg = small_config();
  cfg.beta_min = 2.0;
  cfg.beta_max = 1.0;
  EXPECT_THROW(Scenario{cfg}, LppaError);
}

TEST(Scenario, SomeUsersHavePositiveBids) {
  // Statistical sanity: in a mixed-coverage world, a reasonable share of
  // users must find at least one biddable channel.
  const Scenario s(small_config());
  EXPECT_GT(auction::count_interested(s.bids()), 5u);
}

}  // namespace
}  // namespace lppa::sim
