#include "prefix/hashed_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lppa::prefix {
namespace {

struct HashedSetTest : ::testing::Test {
  Rng rng{99};
  crypto::SecretKey key = crypto::SecretKey::generate(rng);
};

TEST_F(HashedSetTest, ValueFamilySize) {
  const auto s = HashedPrefixSet::of_value(key, 7, 4);
  EXPECT_EQ(s.size(), 5u);  // w+1
}

TEST_F(HashedSetTest, IntersectionMirrorsPlaintextMembership) {
  // The defining property of the whole construction: masked sets
  // intersect exactly when the plaintext membership holds.
  const int w = 10;
  for (int round = 0; round < 200; ++round) {
    std::uint64_t a = rng.below(1 << w);
    std::uint64_t b = rng.below(1 << w);
    if (a > b) std::swap(a, b);
    const std::uint64_t x = rng.below(1 << w);
    const auto family = HashedPrefixSet::of_value(key, x, w);
    const auto range = HashedPrefixSet::of_range(key, a, b, w);
    EXPECT_EQ(family.intersects(range), x >= a && x <= b)
        << "x=" << x << " [" << a << "," << b << "]";
  }
}

TEST_F(HashedSetTest, IntersectionIsSymmetric) {
  const auto f = HashedPrefixSet::of_value(key, 7, 4);
  const auto r = HashedPrefixSet::of_range(key, 6, 14, 4);
  EXPECT_EQ(f.intersects(r), r.intersects(f));
}

TEST_F(HashedSetTest, DifferentKeysNeverIntersect) {
  const crypto::SecretKey other = crypto::SecretKey::generate(rng);
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t x = rng.below(1 << 10);
    const auto mine = HashedPrefixSet::of_value(key, x, 10);
    const auto theirs = HashedPrefixSet::of_range(other, 0, (1 << 10) - 1, 10);
    // Under the wrong key even the trivially-true membership "x in full
    // domain" is invisible.
    EXPECT_FALSE(mine.intersects(theirs));
  }
}

TEST_F(HashedSetTest, PaddingNeverChangesAnswers) {
  const int w = 8;
  for (int round = 0; round < 100; ++round) {
    std::uint64_t a = rng.below(1 << w);
    std::uint64_t b = rng.below(1 << w);
    if (a > b) std::swap(a, b);
    const std::uint64_t x = rng.below(1 << w);
    const auto family = HashedPrefixSet::of_value(key, x, w);
    auto range = HashedPrefixSet::of_range(key, a, b, w);
    const bool before = family.intersects(range);
    range.pad_to(max_range_prefixes(w), rng);
    EXPECT_EQ(range.size(), max_range_prefixes(w));
    EXPECT_EQ(family.intersects(range), before);
  }
}

TEST_F(HashedSetTest, PadToSmallerTargetIsNoOp) {
  auto s = HashedPrefixSet::of_value(key, 7, 4);
  const auto before = s;
  s.pad_to(2, rng);
  EXPECT_EQ(s, before);
}

TEST_F(HashedSetTest, PaddedSetsHaveUniformCardinality) {
  // Fix (v): after padding, a tight range and a worst-case range are
  // indistinguishable by set size.
  const int w = 8;
  auto narrow = HashedPrefixSet::of_range(key, 5, 5, w);
  auto wide = HashedPrefixSet::of_range(key, 1, (1 << w) - 2, w);
  narrow.pad_to(max_range_prefixes(w), rng);
  wide.pad_to(max_range_prefixes(w), rng);
  EXPECT_EQ(narrow.size(), wide.size());
}

TEST_F(HashedSetTest, SerializeRoundTrip) {
  auto s = HashedPrefixSet::of_range(key, 3, 200, 10);
  s.pad_to(max_range_prefixes(10), rng);
  ByteWriter w;
  s.serialize(w);
  EXPECT_EQ(w.size(), s.wire_size());
  ByteReader r(std::span<const std::uint8_t>(w.data()));
  const auto restored = HashedPrefixSet::deserialize(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(restored, s);
}

TEST_F(HashedSetTest, DeserializeRejectsTruncation) {
  ByteWriter w;
  HashedPrefixSet::of_value(key, 7, 4).serialize(w);
  Bytes wire = w.take();
  wire.resize(wire.size() - 1);
  ByteReader r(wire);
  EXPECT_THROW(HashedPrefixSet::deserialize(r), LppaError);
}

TEST_F(HashedSetTest, FromDigestsSortsInput) {
  crypto::Digest d1, d2;
  d1.bytes[0] = 2;
  d2.bytes[0] = 1;
  const auto s = HashedPrefixSet::from_digests({d1, d2});
  EXPECT_LT(s.digests()[0], s.digests()[1]);
}

TEST_F(HashedSetTest, EmptySetIntersectsNothing) {
  const HashedPrefixSet empty;
  const auto other = HashedPrefixSet::of_value(key, 7, 4);
  EXPECT_FALSE(empty.intersects(other));
  EXPECT_FALSE(other.intersects(empty));
  EXPECT_FALSE(empty.intersects(empty));
}

TEST_F(HashedSetTest, BoxMatchRequiresBothAxes) {
  // Point (7, 3); box x in [6,14], y in [10,12] -> y fails.
  const auto xf = HashedPrefixSet::of_value(key, 7, 4);
  const auto yf = HashedPrefixSet::of_value(key, 3, 4);
  const auto xr = HashedPrefixSet::of_range(key, 6, 14, 4);
  const auto yr_hit = HashedPrefixSet::of_range(key, 2, 5, 4);
  const auto yr_miss = HashedPrefixSet::of_range(key, 10, 12, 4);
  EXPECT_TRUE(box_match(xf, yf, xr, yr_hit));
  EXPECT_FALSE(box_match(xf, yf, xr, yr_miss));
  EXPECT_FALSE(box_match(yf, xf, yr_miss, xr));
}

TEST_F(HashedSetTest, WireSizeFormula) {
  const auto s = HashedPrefixSet::of_value(key, 7, 4);
  EXPECT_EQ(s.wire_size(), 4 + 32 * s.size());
}

}  // namespace
}  // namespace lppa::prefix
