#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace lppa {
namespace {

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(Binomial, MatchesPascalTriangle) {
  EXPECT_NEAR(binomial(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(binomial(5, 0), 1.0, 1e-9);
  EXPECT_NEAR(binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(binomial(10, 5), 252.0, 1e-6);
  EXPECT_NEAR(binomial(52, 5), 2598960.0, 1.0);
}

TEST(Binomial, OutOfRangeKIsZero) {
  EXPECT_EQ(binomial(3, 4), 0.0);
  EXPECT_EQ(std::isinf(log_binomial(3, 4)), true);
  EXPECT_LT(log_binomial(3, 4), 0.0);
}

TEST(Binomial, RecurrenceHolds) {
  for (std::uint64_t n = 1; n <= 30; ++n) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      EXPECT_NEAR(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k),
                  binomial(n, k) * 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogAddExp, BasicIdentities) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(log_add_exp(ninf, 1.5), 1.5);
  EXPECT_EQ(log_add_exp(1.5, ninf), 1.5);
}

TEST(LogAddExp, StableForLargeMagnitudes) {
  // Without the max-trick this would overflow.
  EXPECT_NEAR(log_add_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(log_add_exp(-1000.0, -1001.0),
              -1000.0 + std::log1p(std::exp(-1.0)), 1e-9);
}

TEST(Ipow, MatchesStdPow) {
  EXPECT_EQ(ipow(2.0, 0), 1.0);
  EXPECT_EQ(ipow(2.0, 10), 1024.0);
  EXPECT_NEAR(ipow(0.5, 20), std::pow(0.5, 20), 1e-15);
  EXPECT_EQ(ipow(0.0, 0), 1.0);  // 0^0 == 1 convention used by theorems
  EXPECT_EQ(ipow(0.0, 3), 0.0);
}

TEST(Entropy, UniformIsLogN) {
  EXPECT_NEAR(entropy({0.25, 0.25, 0.25, 0.25}), std::log(4.0), 1e-12);
}

TEST(Entropy, DegenerateIsZero) {
  EXPECT_EQ(entropy({1.0}), 0.0);
  EXPECT_EQ(entropy({1.0, 0.0, 0.0}), 0.0);
}

TEST(Entropy, NormalisesInternally) {
  EXPECT_NEAR(entropy({2.0, 2.0}), std::log(2.0), 1e-12);
}

TEST(Entropy, EmptyOrZeroInputIsZero) {
  EXPECT_EQ(entropy({}), 0.0);
  EXPECT_EQ(entropy({0.0, 0.0}), 0.0);
}

TEST(Mean, Basics) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
}

TEST(SampleStddev, Basics) {
  EXPECT_EQ(sample_stddev({}), 0.0);
  EXPECT_EQ(sample_stddev({5.0}), 0.0);
  EXPECT_NEAR(sample_stddev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(sample_stddev({1, 2, 3, 4, 5}), std::sqrt(2.5), 1e-12);
}

TEST(BitWidth, Boundaries) {
  EXPECT_EQ(bit_width_for_value(0), 1);
  EXPECT_EQ(bit_width_for_value(1), 1);
  EXPECT_EQ(bit_width_for_value(2), 2);
  EXPECT_EQ(bit_width_for_value(3), 2);
  EXPECT_EQ(bit_width_for_value(4), 3);
  EXPECT_EQ(bit_width_for_value(255), 8);
  EXPECT_EQ(bit_width_for_value(256), 9);
  EXPECT_EQ(bit_width_for_value(~0ULL), 64);
}

}  // namespace
}  // namespace lppa
