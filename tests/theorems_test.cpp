#include "core/theorems.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lppa::core::theorems {
namespace {

// ------------------------------------------------------------ theorem 1

TEST(Thm1, NoZerosMeansCertainWin) {
  const auto policy = ZeroDisguisePolicy::uniform(15, 0.5);
  EXPECT_DOUBLE_EQ(thm1_zero_not_win(10, 0, policy), 1.0);
}

TEST(Thm1, NoDisguiseMeansCertainWin) {
  const auto policy = ZeroDisguisePolicy::none(15);
  // Zeros stay zero; they can never beat a positive b_N.
  EXPECT_NEAR(thm1_zero_not_win(5, 10, policy), 1.0, 1e-12);
}

TEST(Thm1, FullDisguiseAboveBnAlwaysLoses) {
  // All mass on value 15 > b_N = 5: a single zero always outbids.
  std::vector<double> probs(16, 0.0);
  probs[15] = 1.0;
  const auto policy = ZeroDisguisePolicy::from_probs(probs);
  EXPECT_NEAR(thm1_zero_not_win(5, 1, policy), 0.0, 1e-12);
  EXPECT_NEAR(thm1_zero_not_win(5, 7, policy), 0.0, 1e-12);
}

TEST(Thm1, AllMassExactlyAtBnGivesTieBreakFormula) {
  // Every zero disguises exactly as b_N: the original holder survives a
  // uniform (m+1)-way tie-break with probability 1/(m+1).
  std::vector<double> probs(16, 0.0);
  probs[5] = 1.0;
  const auto policy = ZeroDisguisePolicy::from_probs(probs);
  for (std::size_t m = 1; m <= 6; ++m) {
    EXPECT_NEAR(thm1_zero_not_win(5, m, policy),
                1.0 / static_cast<double>(m + 1), 1e-12)
        << "m=" << m;
  }
}

TEST(Thm1, MonotoneDecreasingInZeroCount) {
  const auto policy = ZeroDisguisePolicy::best_protection(15);
  double prev = 1.0;
  for (std::size_t m = 1; m <= 20; ++m) {
    const double p = thm1_zero_not_win(10, m, policy);
    EXPECT_LT(p, prev) << "m=" << m;
    prev = p;
  }
}

TEST(Thm1, HigherBnSurvivesBetter) {
  const auto policy = ZeroDisguisePolicy::best_protection(15);
  EXPECT_GT(thm1_zero_not_win(14, 5, policy),
            thm1_zero_not_win(3, 5, policy));
}

TEST(Thm1, RejectsInvalidBn) {
  const auto policy = ZeroDisguisePolicy::best_protection(15);
  EXPECT_THROW(thm1_zero_not_win(0, 3, policy), LppaError);
  EXPECT_THROW(thm1_zero_not_win(16, 3, policy), LppaError);
}

class Thm1MonteCarlo
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(Thm1MonteCarlo, ClosedFormMatchesSimulation) {
  const auto [b_n, m, replace] = GetParam();
  const auto policy = ZeroDisguisePolicy::uniform(15, replace);
  const double closed =
      thm1_zero_not_win(static_cast<Money>(b_n), static_cast<std::size_t>(m),
                        policy);
  Rng rng(static_cast<std::uint64_t>(b_n * 1000 + m * 10) + 1);
  const double mc = thm1_monte_carlo(static_cast<Money>(b_n),
                                     static_cast<std::size_t>(m), policy,
                                     200000, rng);
  EXPECT_NEAR(closed, mc, 0.01)
      << "b_N=" << b_n << " m=" << m << " replace=" << replace;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Thm1MonteCarlo,
    ::testing::Values(std::make_tuple(5, 3, 0.5), std::make_tuple(10, 8, 0.3),
                      std::make_tuple(1, 5, 0.9), std::make_tuple(15, 4, 1.0),
                      std::make_tuple(8, 20, 0.7),
                      std::make_tuple(12, 1, 0.2)));

// ------------------------------------------------------------ theorem 2

TEST(Thm2, MoreSlotsThanZerosMeansCertainLeakage) {
  const auto policy = ZeroDisguisePolicy::best_protection(15);
  EXPECT_DOUBLE_EQ(thm2_no_leakage(10, 2, 3, policy), 0.0);
}

TEST(Thm2, NoDisguiseLeaksAlways) {
  const auto policy = ZeroDisguisePolicy::none(15);
  EXPECT_NEAR(thm2_no_leakage(10, 5, 2, policy), 0.0, 1e-12);
}

TEST(Thm2, AllMassAboveBnProtectsFully) {
  std::vector<double> probs(16, 0.0);
  probs[15] = 1.0;
  const auto policy = ZeroDisguisePolicy::from_probs(probs);
  EXPECT_NEAR(thm2_no_leakage(5, 4, 2, policy), 1.0, 1e-12);
}

TEST(Thm2, IncreasingSelectionSizeLeaksMore) {
  const auto policy = ZeroDisguisePolicy::best_protection(15);
  double prev = 1.0;
  for (std::size_t t = 1; t <= 6; ++t) {
    const double p = thm2_no_leakage(8, 8, t, policy);
    EXPECT_LE(p, prev + 1e-12) << "t=" << t;
    prev = p;
  }
}

class Thm2MonteCarlo
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(Thm2MonteCarlo, ExactFormMatchesSimulationAndPaperLowerBounds) {
  const auto [b_n, m, t, replace] = GetParam();
  const auto policy = ZeroDisguisePolicy::uniform(15, replace);
  const double exact = thm2_no_leakage_exact(
      static_cast<Money>(b_n), static_cast<std::size_t>(m),
      static_cast<std::size_t>(t), policy);
  const double as_printed = thm2_no_leakage(
      static_cast<Money>(b_n), static_cast<std::size_t>(m),
      static_cast<std::size_t>(t), policy);
  Rng rng(static_cast<std::uint64_t>(b_n * 997 + m * 31 + t) + 5);
  const double mc = thm2_monte_carlo(
      static_cast<Money>(b_n), static_cast<std::size_t>(m),
      static_cast<std::size_t>(t), policy, 200000, rng);
  EXPECT_NEAR(exact, mc, 0.012)
      << "b_N=" << b_n << " m=" << m << " t=" << t << " r=" << replace;
  // The paper's (j-1)/j boundary factor under-counts safe ties, so the
  // as-printed value is a strict lower bound on the exact probability.
  EXPECT_LE(as_printed, exact + 1e-12);
  EXPECT_GT(as_printed, exact - 0.1);  // ... but not wildly off
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Thm2MonteCarlo,
    ::testing::Values(std::make_tuple(5, 6, 2, 0.8),
                      std::make_tuple(10, 10, 3, 0.9),
                      std::make_tuple(3, 4, 1, 0.5),
                      std::make_tuple(8, 12, 4, 1.0),
                      std::make_tuple(14, 6, 2, 0.6)));

// ------------------------------------------------------------ theorem 3

TEST(Thm3, MonteCarloZeroWhenZerosDominate) {
  // All zeros replaced uniformly; a single tiny true bid among huge m and
  // tiny t is rarely selected.
  Rng rng(5);
  const double mu = thm3_monte_carlo({1}, 50, 1, 15, 20000, rng);
  EXPECT_LT(mu, 0.3);
}

TEST(Thm3, MonteCarloAllTrueWhenNoZeros) {
  Rng rng(6);
  const double mu = thm3_monte_carlo({5, 9, 12}, 0, 3, 15, 100, rng);
  EXPECT_DOUBLE_EQ(mu, 3.0);
}

TEST(Thm3, MonteCarloMatchesExhaustiveTinyCase) {
  // One true bid b=1, one zero, t=1, bmax=1: the zero draws 0 or 1
  // uniformly.  cutoff = max value.  If zero draws 1 -> tie at 1, both
  // selected -> mu = 1; if zero draws 0 -> cutoff 1, only true bid -> 1.
  // So E[mu] = 1 exactly.
  Rng rng(7);
  EXPECT_NEAR(thm3_monte_carlo({1}, 1, 1, 1, 50000, rng), 1.0, 1e-9);
}

TEST(Thm3, MonteCarloSecondTinyCase) {
  // b=1, one zero, t=1, bmax=2.  Zero draws u in {0,1,2} uniformly.
  // u=2: cutoff 2, only the zero selected -> mu=0; u=1: tie at 1, both
  // selected -> mu=1; u=0: cutoff 1, true bid selected -> mu=1.
  // E[mu] = 2/3.
  Rng rng(8);
  EXPECT_NEAR(thm3_monte_carlo({1}, 1, 1, 2, 200000, rng), 2.0 / 3.0, 0.01);
}

TEST(Thm3, ClosedFormIsFiniteAndNonNegative) {
  // The paper's printed formula (implemented as-stated) must at least be
  // numerically well-behaved across a parameter sweep; its quantitative
  // divergence from the MC ground truth is documented in EXPERIMENTS.md.
  for (std::size_t m : {1u, 3u, 8u}) {
    for (std::size_t t : {1u, 2u, 4u}) {
      const double v = thm3_expected_true_bids({3, 7, 11}, m, t, 15);
      EXPECT_GE(v, 0.0) << "m=" << m << " t=" << t;
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_LE(v, static_cast<double>(t) + 1e-9);
    }
  }
}

TEST(Thm3, InputValidation) {
  Rng rng(9);
  EXPECT_THROW(thm3_expected_true_bids({}, 1, 1, 15), LppaError);
  EXPECT_THROW(thm3_expected_true_bids({5, 3}, 1, 1, 15), LppaError);
  EXPECT_THROW(thm3_expected_true_bids({3, 5}, 1, 0, 15), LppaError);
  EXPECT_THROW(thm3_monte_carlo({3, 5}, 1, 1, 15, 0, rng), LppaError);
}

// ------------------------------------------------------------ theorem 4

TEST(Thm4, FormulaMatchesHandComputation) {
  // h=2, k=3, N=4, w=5: 2*3*4*(14)*(6) = 2016.
  EXPECT_DOUBLE_EQ(thm4_comm_bits(2.0, 3, 4, 5), 2016.0);
}

TEST(Thm4, LinearInUsersAndChannels) {
  const double base = thm4_comm_bits(1.5, 10, 100, 8);
  EXPECT_DOUBLE_EQ(thm4_comm_bits(1.5, 20, 100, 8), 2 * base);
  EXPECT_DOUBLE_EQ(thm4_comm_bits(1.5, 10, 300, 8), 3 * base);
}

TEST(Thm4, HmacRatioFor256BitDigests) {
  EXPECT_DOUBLE_EQ(hmac_length_ratio(7), 32.0);
  EXPECT_DOUBLE_EQ(hmac_length_ratio(3), 64.0);
  EXPECT_THROW(hmac_length_ratio(0), LppaError);
}

TEST(Thm4, ParameterValidation) {
  EXPECT_THROW(thm4_comm_bits(0.0, 1, 1, 4), LppaError);
  EXPECT_THROW(thm4_comm_bits(1.0, 1, 1, 0), LppaError);
}

}  // namespace
}  // namespace lppa::core::theorems
