#include "prefix/prefix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace lppa::prefix {
namespace {

TEST(Prefix, PatternRendering) {
  EXPECT_EQ((Prefix{0b110, 3, 4}.pattern()), "110*");
  EXPECT_EQ((Prefix{0, 0, 4}.pattern()), "****");
  EXPECT_EQ((Prefix{0b0111, 4, 4}.pattern()), "0111");
}

TEST(Prefix, RangeBounds) {
  const Prefix p{0b10, 2, 4};  // 10**
  EXPECT_EQ(p.range_lo(), 0b1000u);
  EXPECT_EQ(p.range_hi(), 0b1011u);
  const Prefix full{0, 0, 4};
  EXPECT_EQ(full.range_lo(), 0u);
  EXPECT_EQ(full.range_hi(), 15u);
  const Prefix exact{0b0111, 4, 4};
  EXPECT_EQ(exact.range_lo(), 7u);
  EXPECT_EQ(exact.range_hi(), 7u);
}

TEST(Prefix, MatchesAgreesWithRange) {
  const Prefix p{0b10, 2, 4};
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(p.matches(v), v >= p.range_lo() && v <= p.range_hi()) << v;
  }
}

TEST(PrefixFamily, PaperExampleForSeven) {
  // Paper §II-B: the prefix family of 7 (w=4) is
  // {0111, 011*, 01**, 0***, ****}.
  const auto family = prefix_family(7, 4);
  ASSERT_EQ(family.size(), 5u);
  EXPECT_EQ(family[0].pattern(), "0111");
  EXPECT_EQ(family[1].pattern(), "011*");
  EXPECT_EQ(family[2].pattern(), "01**");
  EXPECT_EQ(family[3].pattern(), "0***");
  EXPECT_EQ(family[4].pattern(), "****");
}

TEST(PrefixFamily, HasWidthPlusOneElements) {
  for (int w = 1; w <= 16; ++w) {
    EXPECT_EQ(prefix_family(0, w).size(), static_cast<std::size_t>(w) + 1);
  }
}

TEST(PrefixFamily, EveryMemberContainsTheValue) {
  Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    const int w = static_cast<int>(rng.uniform_int(1, 20));
    const std::uint64_t x = rng.below(std::uint64_t{1} << w);
    for (const auto& p : prefix_family(x, w)) {
      EXPECT_TRUE(p.matches(x)) << p.pattern() << " vs " << x;
    }
  }
}

TEST(PrefixFamily, RejectsOversizedValue) {
  EXPECT_THROW(prefix_family(16, 4), LppaError);
  EXPECT_THROW(prefix_family(1, 0), LppaError);
  EXPECT_THROW(prefix_family(0, 63), LppaError);
}

TEST(RangePrefixes, PaperExampleSixToFourteen) {
  // Paper §II-B: Q([6,14]) = {011*, 10**, 110*, 1110}.
  const auto cover = range_prefixes(6, 14, 4);
  std::set<std::string> patterns;
  for (const auto& p : cover) patterns.insert(p.pattern());
  EXPECT_EQ(patterns,
            (std::set<std::string>{"011*", "10**", "110*", "1110"}));
}

TEST(RangePrefixes, SingletonRange) {
  const auto cover = range_prefixes(5, 5, 4);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].pattern(), "0101");
}

TEST(RangePrefixes, FullDomainIsOnePrefix) {
  const auto cover = range_prefixes(0, 15, 4);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].pattern(), "****");
}

TEST(RangePrefixes, RejectsInvertedRange) {
  EXPECT_THROW(range_prefixes(5, 4, 4), LppaError);
}

TEST(Numericalize, PaperExample) {
  // O(110*) = 11010.
  EXPECT_EQ(numericalize(Prefix{0b110, 3, 4}), 0b11010u);
  // Exact value 0111 -> 01111.
  EXPECT_EQ(numericalize(Prefix{0b0111, 4, 4}), 0b01111u);
  // **** -> 10000.
  EXPECT_EQ(numericalize(Prefix{0, 0, 4}), 0b10000u);
}

TEST(Numericalize, InjectiveOverAllPrefixesOfAWidth) {
  // Every prefix of width w maps to a distinct (w+1)-bit number.
  const int w = 6;
  std::set<std::uint64_t> seen;
  for (int len = 0; len <= w; ++len) {
    for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << len); ++bits) {
      EXPECT_TRUE(seen.insert(numericalize(Prefix{bits, len, w})).second)
          << "len=" << len << " bits=" << bits;
    }
  }
  // Total prefix count: 2^(w+1) - 1.
  EXPECT_EQ(seen.size(), (std::size_t{1} << (w + 1)) - 1);
}

TEST(MaxRangePrefixes, MatchesGuptaMcKeownBound) {
  EXPECT_EQ(max_range_prefixes(1), 1u);
  EXPECT_EQ(max_range_prefixes(2), 2u);
  EXPECT_EQ(max_range_prefixes(4), 6u);
  EXPECT_EQ(max_range_prefixes(16), 30u);
}

TEST(MemberOfRange, PaperExampleSevenInSixFourteen) {
  EXPECT_TRUE(member_of_range(7, 6, 14, 4));
  EXPECT_FALSE(member_of_range(5, 6, 14, 4));
  EXPECT_FALSE(member_of_range(15, 6, 14, 4));
}

// Exhaustive correctness for small widths: the minimal cover covers
// exactly [a,b] with disjoint prefixes, never exceeds 2w-2 elements, and
// membership matches arithmetic for every (x, a, b).
class RangeCoverExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(RangeCoverExhaustive, CoverIsExactDisjointAndBounded) {
  const int w = GetParam();
  const std::uint64_t top = (std::uint64_t{1} << w) - 1;
  for (std::uint64_t a = 0; a <= top; ++a) {
    for (std::uint64_t b = a; b <= top; ++b) {
      const auto cover = range_prefixes(a, b, w);
      EXPECT_LE(cover.size(), max_range_prefixes(w));
      // Exact coverage, no overlap: count matches via interval sum and
      // pairwise-disjoint lo/hi intervals.
      std::uint64_t covered = 0;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
      for (const auto& p : cover) {
        covered += p.range_hi() - p.range_lo() + 1;
        intervals.emplace_back(p.range_lo(), p.range_hi());
        EXPECT_GE(p.range_lo(), a);
        EXPECT_LE(p.range_hi(), b);
      }
      EXPECT_EQ(covered, b - a + 1) << "a=" << a << " b=" << b;
      std::sort(intervals.begin(), intervals.end());
      for (std::size_t i = 1; i < intervals.size(); ++i) {
        EXPECT_GT(intervals[i].first, intervals[i - 1].second);
      }
    }
  }
}

TEST_P(RangeCoverExhaustive, MembershipMatchesArithmetic) {
  const int w = GetParam();
  const std::uint64_t top = (std::uint64_t{1} << w) - 1;
  for (std::uint64_t a = 0; a <= top; ++a) {
    for (std::uint64_t b = a; b <= top; ++b) {
      for (std::uint64_t x = 0; x <= top; ++x) {
        EXPECT_EQ(member_of_range(x, a, b, w), x >= a && x <= b)
            << "x=" << x << " [" << a << "," << b << "] w=" << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, RangeCoverExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5));

// Randomised membership property at realistic widths.
class MembershipRandom : public ::testing::TestWithParam<int> {};

TEST_P(MembershipRandom, MatchesArithmetic) {
  const int w = GetParam();
  Rng rng(static_cast<std::uint64_t>(w) * 101 + 3);
  const std::uint64_t top =
      (w == 64) ? ~0ULL : ((std::uint64_t{1} << w) - 1);
  for (int round = 0; round < 300; ++round) {
    std::uint64_t a = rng.below(top + 1);
    std::uint64_t b = rng.below(top + 1);
    if (a > b) std::swap(a, b);
    const std::uint64_t x = rng.below(top + 1);
    EXPECT_EQ(member_of_range(x, a, b, w), x >= a && x <= b)
        << "x=" << x << " [" << a << "," << b << "] w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MembershipRandom,
                         ::testing::Values(8, 12, 17, 24, 32, 48, 62));

TEST(RangePrefixes, WorstCaseCardinalityIsAchievable) {
  // [1, 2^w - 2] is the classic worst case with exactly 2w-2 prefixes.
  for (int w = 2; w <= 20; ++w) {
    const std::uint64_t top = (std::uint64_t{1} << w) - 1;
    const auto cover = range_prefixes(1, top - 1, w);
    EXPECT_EQ(cover.size(), max_range_prefixes(w)) << "w=" << w;
  }
}

}  // namespace
}  // namespace lppa::prefix
