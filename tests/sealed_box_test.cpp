#include "crypto/sealed_box.h"

#include <gtest/gtest.h>

namespace lppa::crypto {
namespace {

struct SealedBoxTest : ::testing::Test {
  lppa::Rng rng{1234};
  SecretKey gc = SecretKey::generate(rng);
  SealedBox box{gc};
  Bytes msg = {'b', 'i', 'd', '=', '7'};
};

TEST_F(SealedBoxTest, SealOpenRoundTrip) {
  const SealedMessage sealed = box.seal(msg, rng);
  const auto opened = box.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(SealedBoxTest, CiphertextDiffersFromPlaintext) {
  const SealedMessage sealed = box.seal(msg, rng);
  EXPECT_NE(sealed.ciphertext, msg);
}

TEST_F(SealedBoxTest, SameMessageSealsDifferentlyEachTime) {
  // Fresh nonces make sealing non-deterministic: the auctioneer cannot
  // match equal bids by comparing ciphertexts.
  const SealedMessage a = box.seal(msg, rng);
  const SealedMessage b = box.seal(msg, rng);
  EXPECT_NE(a.nonce, b.nonce);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST_F(SealedBoxTest, TamperedCiphertextRejected) {
  SealedMessage sealed = box.seal(msg, rng);
  sealed.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(box.open(sealed).has_value());
}

TEST_F(SealedBoxTest, TamperedTagRejected) {
  SealedMessage sealed = box.seal(msg, rng);
  sealed.tag.bytes[5] ^= 0x80;
  EXPECT_FALSE(box.open(sealed).has_value());
}

TEST_F(SealedBoxTest, TamperedNonceRejected) {
  SealedMessage sealed = box.seal(msg, rng);
  sealed.nonce[0] ^= 0xff;
  EXPECT_FALSE(box.open(sealed).has_value());
}

TEST_F(SealedBoxTest, WrongKeyRejected) {
  const SealedMessage sealed = box.seal(msg, rng);
  const SecretKey other_key = SecretKey::generate(rng);
  const SealedBox other(other_key);
  EXPECT_FALSE(other.open(sealed).has_value());
}

TEST_F(SealedBoxTest, EmptyPlaintextSupported) {
  const SealedMessage sealed = box.seal(Bytes{}, rng);
  const auto opened = box.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST_F(SealedBoxTest, SerializeDeserializeRoundTrip) {
  const SealedMessage sealed = box.seal(msg, rng);
  const Bytes wire = sealed.serialize();
  EXPECT_EQ(wire.size(), sealed.wire_size() + 4);  // +4: length prefix
  const SealedMessage restored = SealedMessage::deserialize(wire);
  EXPECT_EQ(restored, sealed);
  const auto opened = box.open(restored);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(SealedBoxTest, DeserializeRejectsTrailingGarbage) {
  Bytes wire = box.seal(msg, rng).serialize();
  wire.push_back(0x00);
  EXPECT_THROW(SealedMessage::deserialize(wire), LppaError);
}

TEST_F(SealedBoxTest, DeserializeRejectsTruncation) {
  Bytes wire = box.seal(msg, rng).serialize();
  wire.resize(wire.size() - 1);
  EXPECT_THROW(SealedMessage::deserialize(wire), LppaError);
}

TEST_F(SealedBoxTest, LargeMessageRoundTrip) {
  Bytes big(10000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  const SealedMessage sealed = box.seal(big, rng);
  const auto opened = box.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, big);
}

TEST_F(SealedBoxTest, TwoBoxesSameKeyInteroperate) {
  const SealedBox alice(gc);
  const SealedBox ttp(gc);
  const SealedMessage sealed = alice.seal(msg, rng);
  const auto opened = ttp.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

}  // namespace
}  // namespace lppa::crypto
