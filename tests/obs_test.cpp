// obs layer tests: registry semantics, histogram bucket properties,
// counter monotonicity under ThreadPool contention (clean under tsan —
// the registry promises lock-free updates after creation), span trees,
// and both exporters' output shapes.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/span.h"
#include "strict_json.h"

namespace lppa {
namespace {

using testjson::parse_strict;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, LeInclusiveBucketing) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(1.0);    // le=1 (inclusive upper bound)
  h.observe(1.5);    // le=10
  h.observe(10.0);   // le=10
  h.observe(100.5);  // +Inf
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // the implicit +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 113.0);
}

TEST(Histogram, BucketBoundaryProperty) {
  // Property: for every bound b, observations of b land at (or below)
  // b's bucket and observations of nextafter(b, +inf) land above it.
  const std::vector<double> bounds = {0.5, 1.0, 2.0, 8.0, 64.0};
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    obs::Histogram h(bounds);
    h.observe(bounds[i]);
    h.observe(std::nextafter(bounds[i], std::numeric_limits<double>::max()));
    std::uint64_t at_or_below = 0;
    for (std::size_t b = 0; b <= i; ++b) at_or_below += h.bucket_count(b);
    std::uint64_t above = 0;
    for (std::size_t b = i + 1; b <= bounds.size(); ++b) {
      above += h.bucket_count(b);
    }
    EXPECT_EQ(at_or_below, 1u) << "bound " << bounds[i];
    EXPECT_EQ(above, 1u) << "just above " << bounds[i];
  }
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), LppaError);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), LppaError);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), LppaError);
  EXPECT_THROW(
      obs::Histogram({1.0, std::numeric_limits<double>::infinity()}),
      LppaError);
}

TEST(MetricsRegistry, SameNameSameMetric) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x.events");
  obs::Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
}

TEST(MetricsRegistry, HistogramBoundsFixedAtCreation) {
  obs::MetricsRegistry reg;
  const std::vector<double> bounds = {1.0, 2.0};
  obs::Histogram& h = reg.histogram("h", bounds);
  const std::vector<double> other = {5.0};
  EXPECT_EQ(&reg.histogram("h", other), &h);
  EXPECT_EQ(h.upper_bounds(), bounds);
}

TEST(MetricsRegistry, CounterMonotonicUnderThreadPoolContention) {
  // Many workers hammer the same counters through parallel_for; the
  // final totals must be exact (relaxed atomics still guarantee
  // modification-order totality per object).  Run under tsan this also
  // proves the hot path takes no lock and has no race.
  obs::MetricsRegistry reg;
  obs::Counter& events = reg.counter("contended.events");
  obs::Counter& bytes = reg.counter("contended.bytes");
  constexpr std::size_t kIters = 20000;
  parallel_for(kIters, 0, [&](std::size_t i) {
    events.inc();
    bytes.inc(i % 7);
    // Same-name resolution from inside workers must also be safe.
    reg.counter("contended.resolved").inc();
  });
  EXPECT_EQ(events.value(), kIters);
  EXPECT_EQ(reg.counter("contended.resolved").value(), kIters);
  std::uint64_t expect_bytes = 0;
  for (std::size_t i = 0; i < kIters; ++i) expect_bytes += i % 7;
  EXPECT_EQ(bytes.value(), expect_bytes);
}

TEST(MetricsRegistry, HistogramExactUnderContention) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("contended.h", std::vector<double>{10.0, 100.0});
  constexpr std::size_t kIters = 9000;
  parallel_for(kIters, 0, [&](std::size_t i) {
    h.observe(static_cast<double>(i % 3 == 0 ? 5 : 50));
  });
  EXPECT_EQ(h.count(), kIters);
  EXPECT_EQ(h.bucket_count(0) + h.bucket_count(1) + h.bucket_count(2), kIters);
  EXPECT_EQ(h.bucket_count(0), (kIters + 2) / 3);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(Span, InertOnNullRegistry) {
  obs::Span root(nullptr, "root");
  EXPECT_EQ(root.id(), 0u);
  obs::Span child(nullptr, "child", &root);
  child.end();
  child.end();  // idempotent on inert spans too
}

TEST(Span, RecordsParentEdges) {
  obs::MetricsRegistry reg;
  {
    obs::Span round(&reg, "round");
    obs::Span submit(&reg, "submit", &round);
    submit.end();
    obs::Span allocate(&reg, "allocate", &round);
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Destruction order records children first, then the root.
  std::uint64_t round_id = 0;
  for (const auto& s : spans) {
    if (s.name == "round") round_id = s.id;
  }
  ASSERT_NE(round_id, 0u);
  for (const auto& s : spans) {
    if (s.name == "round") {
      EXPECT_EQ(s.parent, 0u);
    } else {
      EXPECT_EQ(s.parent, round_id);
      EXPECT_GE(s.wall_us, 0.0);
    }
  }
  // Each span also feeds its latency histogram.
  EXPECT_EQ(reg.histogram("span.round.us").count(), 1u);
  EXPECT_EQ(reg.histogram("span.submit.us").count(), 1u);
}

TEST(Span, ExplicitEndPinsTheRegion) {
  obs::MetricsRegistry reg;
  obs::Span s(&reg, "pinned");
  s.end();
  s.end();  // second end() is a no-op
  EXPECT_EQ(reg.spans().size(), 1u);
  EXPECT_EQ(reg.histogram("span.pinned.us").count(), 1u);
}

TEST(MetricsRegistry, SpanTraceBoundedButHistogramsKeepCounting) {
  obs::MetricsRegistry reg;
  const std::size_t total = obs::MetricsRegistry::kMaxSpans + 100;
  for (std::size_t i = 0; i < total; ++i) {
    reg.record_span("tick", reg.next_span_id(), 0, 1.0);
  }
  EXPECT_EQ(reg.spans().size(), obs::MetricsRegistry::kMaxSpans);
  EXPECT_EQ(reg.spans_dropped(), 100u);
  EXPECT_EQ(reg.histogram("span.tick.us").count(), total);
}

TEST(MetricsRegistry, JsonSnapshotParsesStrict) {
  obs::MetricsRegistry reg;
  reg.counter("a.events").inc(3);
  reg.gauge("a.depth").set(1.25);
  reg.histogram("a.lat", std::vector<double>{1.0, 2.0}).observe(1.5);
  reg.record_span("phase", reg.next_span_id(), 0, 42.0);

  const auto doc = parse_strict(reg.json());
  EXPECT_EQ(doc.at("counters").at("a.events").number, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("a.depth").number, 1.25);
  const auto& hist = doc.at("histograms").at("a.lat");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 1.5);
  ASSERT_EQ(doc.at("spans").size(), 1u);
  EXPECT_EQ(doc.at("spans")[0].at("name").string, "phase");
  EXPECT_EQ(doc.at("spans")[0].at("parent").number, 0.0);
  EXPECT_EQ(doc.at("spans_dropped").number, 0.0);
  // Compact mode must parse too.
  parse_strict(reg.json(/*indent=*/0));
}

TEST(MetricsRegistry, PrometheusShape) {
  obs::MetricsRegistry reg;
  reg.counter("bus.messages").inc(7);
  reg.gauge("wire.journal_bytes").set(512.0);
  reg.histogram("ttp.batch_size", std::vector<double>{1.0, 8.0}).observe(4.0);
  const std::string page = reg.prometheus();
  EXPECT_NE(page.find("# TYPE bus_messages counter"), std::string::npos);
  EXPECT_NE(page.find("bus_messages 7"), std::string::npos);
  EXPECT_NE(page.find("# TYPE wire_journal_bytes gauge"), std::string::npos);
  EXPECT_NE(page.find("wire_journal_bytes 512"), std::string::npos);
  EXPECT_NE(page.find("# TYPE ttp_batch_size histogram"), std::string::npos);
  EXPECT_NE(page.find("ttp_batch_size_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("ttp_batch_size_count 1"), std::string::npos);
  // Cumulative le semantics: the 8.0 bucket already includes the 4.0
  // observation even though it landed in the le="8" bucket.
  EXPECT_NE(page.find("ttp_batch_size_bucket{le=\"8\"} 1"), std::string::npos);
}

TEST(WriteMetricsFile, ReportsUnwritablePath) {
  obs::MetricsRegistry reg;
  std::string error;
  EXPECT_FALSE(obs::write_metrics_file(
      reg, "/nonexistent-dir-for-obs-test/x.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(WriteMetricsFile, FormatFollowsExtension) {
  obs::MetricsRegistry reg;
  reg.counter("fmt.events").inc();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(obs::write_metrics_file(reg, dir + "/obs_snapshot.json"));
  ASSERT_TRUE(obs::write_metrics_file(reg, dir + "/obs_snapshot.prom"));
  std::ifstream json_in(dir + "/obs_snapshot.json");
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  const auto doc = parse_strict(json_buf.str());
  EXPECT_EQ(doc.at("counters").at("fmt.events").number, 1.0);
  std::ifstream prom_in(dir + "/obs_snapshot.prom");
  std::stringstream prom_buf;
  prom_buf << prom_in.rdbuf();
  EXPECT_NE(prom_buf.str().find("fmt_events 1"), std::string::npos);
}

}  // namespace
}  // namespace lppa
