#include "geo/sensing.h"

#include <gtest/gtest.h>

#include "geo/synthetic_fcc.h"
#include "sim/scenario.h"

namespace lppa::geo {
namespace {

Dataset tiny_dataset() {
  const Grid g(2, 2, 100.0);
  Dataset ds(g, -81.0);
  // Channel 0: strong signal in cells 0,1 (occupied), deep quiet in 2,3.
  ds.add_channel(finalize_channel(g, {-50.0, -60.0, -120.0, -130.0}, -81.0));
  // Channel 1: everything hovers right at the threshold.
  ds.add_channel(finalize_channel(g, {-80.0, -81.0, -82.0, -83.0}, -81.0));
  return ds;
}

TEST(EnergyDetector, ValidatesConfig) {
  SensingConfig cfg;
  cfg.measurement_sigma_db = -1.0;
  EXPECT_THROW(EnergyDetector{cfg}, LppaError);
  cfg = SensingConfig{};
  cfg.averaging = 0;
  EXPECT_THROW(EnergyDetector{cfg}, LppaError);
  cfg = SensingConfig{};
  cfg.quality_span_db = 0.0;
  EXPECT_THROW(EnergyDetector{cfg}, LppaError);
}

TEST(EnergyDetector, NoiselessSensingMatchesGroundTruth) {
  const Dataset ds = tiny_dataset();
  SensingConfig cfg;
  cfg.measurement_sigma_db = 0.0;
  const EnergyDetector detector(cfg);
  Rng rng(1);
  for (std::size_t cell = 0; cell < 4; ++cell) {
    const auto sensed = detector.sense(ds, cell, rng);
    std::vector<std::size_t> channels;
    for (const auto& s : sensed) channels.push_back(s.channel);
    EXPECT_EQ(channels, ds.available_channels(ds.grid().cell_at(cell)))
        << "cell " << cell;
  }
}

TEST(EnergyDetector, StrongSignalsAlwaysDetected) {
  const Dataset ds = tiny_dataset();
  SensingConfig cfg;
  cfg.measurement_sigma_db = 3.0;
  const EnergyDetector detector(cfg);
  Rng rng(2);
  // Channel 0 at cell 0 is 31 dB above the threshold: never missed.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(detector.channel_occupied(ds, 0, 0, rng));
  }
  // Channel 0 at cell 3 is 49 dB below: never falsely detected.
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(detector.channel_occupied(ds, 0, 3, rng));
  }
}

TEST(EnergyDetector, BoundarySignalsFlipWithNoise) {
  const Dataset ds = tiny_dataset();
  SensingConfig cfg;
  cfg.measurement_sigma_db = 4.0;
  cfg.averaging = 1;
  const EnergyDetector detector(cfg);
  Rng rng(3);
  // Channel 1 at cell 1 sits exactly on the threshold: verdicts split.
  int occupied = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    occupied += detector.channel_occupied(ds, 1, 1, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(occupied) / trials, 0.5, 0.05);
}

TEST(EnergyDetector, OccupiedProbabilityClosedFormMatchesSimulation) {
  SensingConfig cfg;
  cfg.measurement_sigma_db = 3.0;
  cfg.averaging = 4;
  const EnergyDetector detector(cfg);
  const Dataset ds = tiny_dataset();
  Rng rng(4);
  // Channel 1, cell 2: true rssi -82, threshold -81.
  const double predicted = detector.occupied_probability(-82.0);
  int occupied = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    occupied += detector.channel_occupied(ds, 1, 2, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(occupied) / trials, predicted, 0.02);
}

TEST(EnergyDetector, AveragingSharpensTheDetector) {
  SensingConfig coarse, fine;
  coarse.measurement_sigma_db = fine.measurement_sigma_db = 6.0;
  coarse.averaging = 1;
  fine.averaging = 16;
  const EnergyDetector rough(coarse), sharp(fine);
  // 3 dB below the threshold: the sharp detector errs less.
  EXPECT_GT(rough.occupied_probability(-84.0),
            sharp.occupied_probability(-84.0));
  // 3 dB above: the sharp detector detects more reliably.
  EXPECT_LT(rough.occupied_probability(-78.0),
            sharp.occupied_probability(-78.0));
}

TEST(EnergyDetector, ZeroSigmaIsAStepFunction) {
  SensingConfig cfg;
  cfg.measurement_sigma_db = 0.0;
  const EnergyDetector detector(cfg);
  EXPECT_EQ(detector.occupied_probability(-80.9), 1.0);
  EXPECT_EQ(detector.occupied_probability(-81.1), 0.0);
}

TEST(SensingScenario, SensingCanBidOnProtectedChannels) {
  // With heavy sensing noise, some SU somewhere bids on a channel that
  // is actually protected at its cell — the interference event the
  // database path can never produce.
  sim::ScenarioConfig cfg;
  cfg.area_id = 3;
  cfg.fcc.rows = 30;
  cfg.fcc.cols = 30;
  cfg.fcc.num_channels = 12;
  cfg.num_users = 40;
  cfg.seed = 11;
  cfg.initial_phase = sim::InitialPhase::kSpectrumSensing;
  cfg.sensing.measurement_sigma_db = 8.0;
  cfg.sensing.averaging = 1;
  const sim::Scenario s(cfg);
  std::size_t interference_bids = 0;
  for (const auto& su : s.users()) {
    const std::size_t cell = s.dataset().grid().index(su.cell);
    for (std::size_t r = 0; r < su.bids.size(); ++r) {
      if (su.bids[r] > 0 && !s.dataset().availability(r).contains(cell)) {
        ++interference_bids;
      }
    }
  }
  EXPECT_GT(interference_bids, 0u);
}

TEST(SensingScenario, NoiselessSensingMatchesDatabasePath) {
  sim::ScenarioConfig cfg;
  cfg.area_id = 4;
  cfg.fcc.rows = 25;
  cfg.fcc.cols = 25;
  cfg.fcc.num_channels = 10;
  cfg.num_users = 15;
  cfg.seed = 21;
  cfg.initial_phase = sim::InitialPhase::kSpectrumSensing;
  cfg.sensing.measurement_sigma_db = 0.0;
  const sim::Scenario s(cfg);
  // Zero sensing noise: availability verdicts coincide with the
  // database's, so no bid lands on a protected channel.
  for (const auto& su : s.users()) {
    const std::size_t cell = s.dataset().grid().index(su.cell);
    for (std::size_t r = 0; r < su.bids.size(); ++r) {
      if (su.bids[r] > 0) {
        EXPECT_TRUE(s.dataset().availability(r).contains(cell));
      }
    }
  }
}

}  // namespace
}  // namespace lppa::geo
