#!/usr/bin/env python3
"""Compare two BENCH_perf_scaling.json files and fail on regressions.

Each file is a JSON array of samples::

    {"phase": str, "n": int, "threads": int, "wall_ms": float, ...}

Samples are matched on (phase, n, threads).  A candidate sample whose
wall_ms exceeds the baseline's by more than --threshold (default 20%)
is a regression; any regression makes the script exit 1, which is what
lets ctest use it as a perf-smoke gate.

Samples may also carry latency-percentile fields — any numeric key
ending in ``_us`` (bench/loadgen emits submit_p50_us .. round_p99_us).
Shared ``_us`` keys are compared with their own, looser gate:
--latency-threshold (default 50%, tail percentiles are noisy) above a
--min-latency-us floor (default 1000 us).  Latency regressions fail the
run exactly like wall_ms regressions; keys present on only one side are
reported and skipped.

Keys present in only one file are reported but are not failures: the
baseline may predate a new phase, and a sanitizer or --smoke run may
skip the large sizes.

Usage::

    bench_compare.py baseline.json candidate.json [--threshold 0.2]
    bench_compare.py baseline.json --run-bench "./bench/perf_scaling --smoke"
    bench_compare.py --validate BENCH_a.json BENCH_b.json ...

With --run-bench the candidate is produced by running the given command
(appending --json <tmpfile>), so ctest needs just one entry point.

With --validate no comparison happens: each listed file must parse under
a strict JSON reader (no NaN/Infinity literals) and contain only finite
numbers, recursively.  Any violation exits nonzero — the JSON lint the
perfsmoke gate runs over every committed BENCH_*.json artifact.
"""

import argparse
import json
import math
import os
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path


def _reject_constant(name):
    # json.load accepts the non-standard NaN/Infinity/-Infinity literals
    # by default; a strict document must never contain them.
    raise ValueError(f"non-finite JSON literal {name}")


def load_strict(path):
    """Parses `path` rejecting the NaN/Infinity extensions."""
    with open(path) as fh:
        try:
            return json.load(fh, parse_constant=_reject_constant)
        except ValueError as exc:
            raise SystemExit(f"{path}: invalid JSON: {exc}")


def check_finite(node, path, where="$"):
    """Recursively rejects non-finite numbers anywhere in the document."""
    if isinstance(node, float) and not math.isfinite(node):
        raise SystemExit(f"{path}: non-finite number at {where}")
    elif isinstance(node, dict):
        for key, value in node.items():
            check_finite(value, path, f"{where}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_finite(value, path, f"{where}[{i}]")


def load_samples(path):
    """Returns {(phase, n, threads): (wall_ms, {latency_key: value_us})}.

    The latency dict holds every numeric field whose name ends in
    ``_us`` — the per-percentile latencies loadgen-style benches emit
    alongside wall_ms.
    """
    data = load_strict(path)
    if not isinstance(data, list):
        raise SystemExit(f"{path}: expected a JSON array of samples")
    check_finite(data, path)
    out = {}
    for sample in data:
        try:
            key = (sample["phase"], int(sample["n"]), int(sample["threads"]))
            wall = float(sample["wall_ms"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(f"{path}: malformed sample {sample!r}: {exc}")
        if not math.isfinite(wall) or wall < 0.0:
            raise SystemExit(
                f"{path}: sample {fmt_key(key)} has invalid wall_ms {wall!r}")
        latencies = {}
        for field, value in sample.items():
            if not field.endswith("_us"):
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SystemExit(
                    f"{path}: sample {fmt_key(key)} field {field} is not "
                    f"numeric: {value!r}")
            value = float(value)
            if not math.isfinite(value) or value < 0.0:
                raise SystemExit(
                    f"{path}: sample {fmt_key(key)} has invalid {field} "
                    f"{value!r}")
            latencies[field] = value
        if key in out:
            raise SystemExit(f"{path}: duplicate sample key {key}")
        out[key] = (wall, latencies)
    return out


def fmt_key(key):
    phase, n, threads = key
    return f"{phase} n={n} threads={threads}"


def main():
    parser = argparse.ArgumentParser(
        description="diff two perf_scaling JSON dumps, fail on regressions")
    parser.add_argument("baseline", nargs="?",
                        help="baseline BENCH_perf_scaling.json")
    parser.add_argument("candidate", nargs="?",
                        help="candidate JSON (or use --run-bench)")
    parser.add_argument("--validate", nargs="+", metavar="FILE",
                        help="no comparison: strict-parse each FILE and "
                             "require every number to be finite")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated fractional wall_ms increase "
                             "(default 0.20 = +20%%)")
    parser.add_argument("--min-wall-ms", type=float, default=10.0,
                        help="skip samples where both sides are below this "
                             "floor — sub-10ms phases are scheduler noise, "
                             "not signal (default 10)")
    parser.add_argument("--latency-threshold", type=float, default=0.50,
                        help="max tolerated fractional increase for *_us "
                             "latency-percentile fields — tails are noisier "
                             "than wall clocks (default 0.50 = +50%%)")
    parser.add_argument("--min-latency-us", type=float, default=1000.0,
                        help="skip *_us fields where both sides are below "
                             "this floor (default 1000)")
    parser.add_argument("--run-bench", metavar="CMD",
                        help="produce the candidate by running CMD "
                             "--json <tmpfile>")
    parser.add_argument("--repeats", type=int, default=3,
                        help="with --run-bench, run the bench this many "
                             "times and keep each sample's best wall_ms — "
                             "the minimum is the least noise-contaminated "
                             "estimate of the code's true cost (default 3)")
    args = parser.parse_args()

    if args.validate is not None:
        if args.baseline or args.candidate or args.run_bench:
            parser.error("--validate takes only a list of files")
        for path in args.validate:
            check_finite(load_strict(path), path)
            print(f"  {path}: strict JSON, all numbers finite")
        print(f"validated {len(args.validate)} file(s)")
        return 0

    if args.baseline is None:
        parser.error("baseline file required (or use --validate)")
    if (args.candidate is None) == (args.run_bench is None):
        parser.error("provide exactly one of: candidate file, --run-bench")

    if args.run_bench:
        candidate = {}
        for rep in range(max(1, args.repeats)):
            with tempfile.NamedTemporaryFile(suffix=".json",
                                             delete=False) as tmp:
                candidate_path = tmp.name
            cmd = shlex.split(args.run_bench) + ["--json", candidate_path]
            print(f"running ({rep + 1}/{args.repeats}):", " ".join(cmd),
                  flush=True)
            proc = subprocess.run(cmd)
            if proc.returncode != 0:
                raise SystemExit(f"bench command failed with {proc.returncode}")
            for key, (wall, lat) in load_samples(candidate_path).items():
                if key in candidate:
                    prev_wall, prev_lat = candidate[key]
                    merged = dict(prev_lat)
                    for field, value in lat.items():
                        merged[field] = min(value, merged.get(field, value))
                    candidate[key] = (min(wall, prev_wall), merged)
                else:
                    candidate[key] = (wall, lat)
    else:
        candidate = load_samples(args.candidate)

    baseline = load_samples(args.baseline)

    regressions = []
    improvements = 0
    skipped_noise = 0
    compared_latencies = 0
    for key in sorted(baseline.keys() & candidate.keys()):
        (base, base_lat), (cand, cand_lat) = baseline[key], candidate[key]
        if base <= 0.0:
            # A zero-wall baseline can never be compared against — any
            # candidate is an infinite regression.  The baseline file is
            # broken; say so instead of silently skipping the sample.
            raise SystemExit(
                f"{args.baseline}: sample {fmt_key(key)} has zero wall_ms — "
                f"regenerate the baseline with a measurable workload")
        if base < args.min_wall_ms and cand < args.min_wall_ms:
            skipped_noise += 1
            print(f"  {fmt_key(key):50s} {base:10.3f} -> {cand:10.3f} ms "
                  f"(below {args.min_wall_ms:g} ms noise floor, skipped)")
            continue
        if key[2] > (os.cpu_count() or 1):
            # More workers than physical cores: the OS scheduler, not the
            # code, decides these timings.  Compared only on hosts that
            # can actually run the workers in parallel.
            skipped_noise += 1
            print(f"  {fmt_key(key):50s} {base:10.3f} -> {cand:10.3f} ms "
                  f"({key[2]} workers > {os.cpu_count()} cores, skipped)")
            continue
        ratio = cand / base
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            regressions.append((fmt_key(key), "ms", base, cand, ratio))
        elif ratio < 1.0:
            improvements += 1
        print(f"  {fmt_key(key):50s} {base:10.3f} -> {cand:10.3f} ms "
              f"({ratio:5.2f}x)  {status}")

        # Latency-percentile fields ride the same sample but get their
        # own (looser) gate: tail percentiles jitter far more than the
        # wall clock, and they are micro- not milliseconds.
        for field in sorted(base_lat.keys() & cand_lat.keys()):
            lbase, lcand = base_lat[field], cand_lat[field]
            label = f"{fmt_key(key)} {field}"
            if lbase < args.min_latency_us and lcand < args.min_latency_us:
                print(f"  {label:50s} {lbase:10.1f} -> {lcand:10.1f} us "
                      f"(below {args.min_latency_us:g} us noise floor, "
                      f"skipped)")
                continue
            if lbase <= 0.0:
                raise SystemExit(
                    f"{args.baseline}: sample {fmt_key(key)} has zero "
                    f"{field} — regenerate the baseline with a measurable "
                    f"workload")
            compared_latencies += 1
            lratio = lcand / lbase
            lstatus = "ok"
            if lratio > 1.0 + args.latency_threshold:
                lstatus = "REGRESSION"
                regressions.append((label, "us", lbase, lcand, lratio))
            print(f"  {label:50s} {lbase:10.1f} -> {lcand:10.1f} us "
                  f"({lratio:5.2f}x)  {lstatus}")
        for field in sorted(base_lat.keys() ^ cand_lat.keys()):
            side = "baseline" if field in base_lat else "candidate"
            print(f"  {fmt_key(key)} {field}: only in {side} (skipped)")

    for key in sorted(baseline.keys() - candidate.keys()):
        print(f"  {fmt_key(key):50s} only in baseline (skipped)")
    for key in sorted(candidate.keys() - baseline.keys()):
        print(f"  {fmt_key(key):50s} only in candidate (new)")

    shared = len(baseline.keys() & candidate.keys()) - skipped_noise
    print(f"compared {shared} samples ({skipped_noise} below noise floor) "
          f"and {compared_latencies} latency fields: "
          f"{improvements} faster, {len(regressions)} regressed")
    if regressions:
        for label, unit, base, cand, ratio in regressions:
            print(f"FAIL: {label} slowed {base:.3f} -> {cand:.3f} {unit} "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    if shared == 0:
        print("FAIL: no overlapping samples to compare", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
