// Baseline comparison: spatial cloaking vs LPPA.
//
// Cloaking (report a coarse block, keep bids plaintext) caps privacy at
// the cloak size — the bids still feed BCM/BPM — and costs spectrum
// reuse through the conservative conflict graph.  LPPA keeps the
// conflict graph exact while hiding the bids.  The rows below trace the
// cloaking frontier; the LPPA line is the comparison point.
#include "bench_util.h"
#include "sim/cloaking.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  auto cfg = bench::scenario_config(args, /*area_id=*/3);
  cfg.fcc.num_channels = args.full ? 40 : 24;
  cfg.num_users = args.full ? 80 : 50;
  // A larger interference radius makes the reuse cost of conservative
  // conflicts visible at realistic cloak sizes.
  cfg.lambda_m = 3000;
  sim::Scenario scenario(cfg);

  const std::vector<std::size_t> cloak_sizes = {1, 2, 5, 10, 20, 40};

  Table table({"defence", "attack_cells", "attack_fail", "attack_err_km",
               "revenue_ratio", "conflict_inflation"});
  for (std::size_t cloak : cloak_sizes) {
    const auto point = sim::run_cloaking_point(scenario, cloak, 77);
    table.add_row({"cloak " + std::to_string(cloak) + "x" +
                       std::to_string(cloak),
                   Table::cell(point.privacy.mean_possible_cells, 1),
                   Table::cell(point.privacy.failure_rate, 3),
                   Table::cell(point.privacy.mean_incorrectness_m / 1000.0, 2),
                   Table::cell(point.revenue_ratio, 3),
                   Table::cell(point.conflict_inflation, 2)});
  }

  // The LPPA comparison point: exact conflicts (ratio vs plain computed
  // by the fig5e machinery) and the ranking attack at 50 %.
  {
    sim::DefenseOptions opts;
    opts.replace_prob = 0.5;
    opts.top_fraction = 0.5;
    const auto defense = sim::run_defense_point(scenario, opts, 99);
    sim::Scenario perf_scenario(cfg);
    const auto perf =
        sim::run_performance_point(perf_scenario, 0.5, 3, 4, 2, 777);
    table.add_row({"LPPA (replace 0.5)",
                   Table::cell(defense.lppa.mean_possible_cells, 1),
                   Table::cell(defense.lppa.failure_rate, 3),
                   Table::cell(defense.lppa.mean_incorrectness_m / 1000.0, 2),
                   Table::cell(perf.bid_sum_ratio, 3), "1.00"});
  }
  bench::emit(table, args, "Baseline — spatial cloaking vs LPPA");
  std::cout
      << "Expected: cloaking buys privacy only as fast as it destroys\n"
         "reuse (conflict inflation grows with the block), and its attack\n"
         "failure rate stays ~0 because plaintext bids still feed\n"
         "BCM/BPM; LPPA reaches far higher attacker failure at a revenue\n"
         "cost no worse than mid-size cloaks, with exact conflicts.\n";
  return 0;
}
