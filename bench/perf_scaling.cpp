// Performance-scaling baseline for the PPBS hot paths.
//
// Sweeps n SUs × worker threads over the three server-relevant phases —
// SU-side submission generation (HMAC-bound), conflict-graph
// construction (indexed hash-join vs the all-pairs reference), and the
// masked greedy auction — and writes a machine-readable JSON trajectory
// (default BENCH_perf_scaling.json) so later scaling PRs have a baseline
// to regress against.
//
// Schema: [{"phase": str, "n": int, "threads": int, "wall_ms": float,
//           "throughput": float}, ...]   (throughput = SUs per second)
// shard_scaling_<S> rows additionally carry {"shards", "halo_edges",
// "boundary_sus", "peak_index_bytes"} — the halo-exchange footprint.
#include <algorithm>
#include <chrono>
#include <fstream>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/encrypted_bid_table.h"
#include "core/lppa_auction.h"
#include "core/shard_conflict.h"
#include "core/sharded_bid_table.h"
#include "prefix/digest_index.h"
#include "shard/shard_plan.h"

namespace {

using namespace lppa;

struct Sample {
  std::string phase;
  std::size_t n = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double throughput = 0.0;  // SUs processed per second
  // shard_scaling rows only: partition count and halo footprint.
  std::size_t shards = 0;
  std::size_t halo_edges = 0;
  std::size_t boundary_sus = 0;
  std::size_t peak_index_bytes = 0;
};

template <typename Fn>
double time_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

Sample sample(std::string phase, std::size_t n, std::size_t threads,
              double wall_ms) {
  Sample s;
  s.phase = std::move(phase);
  s.n = n;
  s.threads = threads;
  s.wall_ms = wall_ms;
  s.throughput = bench::rate_per_sec(static_cast<double>(n), wall_ms);
  return s;
}

void write_json(const std::string& path, const std::vector<Sample>& samples) {
  std::ofstream out = bench::open_output_or_die(path);
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_array();
  for (const Sample& s : samples) {
    w.begin_object()
        .field("phase", std::string_view(s.phase))
        .field("n", s.n)
        .field("threads", s.threads)
        .field("wall_ms", s.wall_ms)
        .field("throughput", s.throughput);
    if (s.shards > 0) {
      w.field("shards", s.shards)
          .field("halo_edges", s.halo_edges)
          .field("boundary_sus", s.boundary_sus)
          .field("peak_index_bytes", s.peak_index_bytes);
    }
    w.end_object();
  }
  w.end_array();
  out << "\n";
  bench::close_output_or_die(out, path);
}

double wall_of(const std::vector<Sample>& samples, const std::string& phase,
               std::size_t n, std::size_t threads) {
  for (const Sample& s : samples) {
    if (s.phase == phase && s.n == n && s.threads == threads) return s.wall_ms;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  // Workload: uniform SUs in a 2^20-wide field with λ = 1000m, i.e. a
  // sparse conflict graph (~0.4% x-window hit rate) like a city-scale
  // deployment; 8 channels keep the auction phase comparable across n.
  const int coord_width = 20;
  const std::uint64_t lambda = 1000;
  const std::size_t num_channels = 8;
  const auction::Money bmax = 15;

  std::vector<std::size_t> sizes = {100, 400, 1600, 6400};
  if (args.full) sizes.push_back(12800);
  // The perfsmoke ctest (tools/bench_compare.py) wants a run that
  // finishes in seconds; the small sizes still exercise every phase.
  if (args.smoke) sizes = {100, 400};
  // The all-pairs reference is quadratic; past this it stops being a
  // baseline and starts being a space heater.
  const std::size_t pairwise_cap = 6400;

  const std::size_t multi =
      args.threads != 0 ? args.threads
                        : std::max<std::size_t>(4, ThreadPool::hardware_threads());
  std::vector<std::size_t> thread_counts = {1};
  if (multi > 1) thread_counts.push_back(multi);

  // Geo-shard counts for the shard_scaling phase: --shards pins one,
  // the default sweeps a 2x2 and a 4x4 grid.
  std::vector<std::size_t> shard_counts = {4, 16};
  if (args.shards > 0) shard_counts = {args.shards};

  Rng rng(20130708);
  const auto g0 = crypto::SecretKey::generate(rng);
  const auto gb = crypto::SecretKey::generate(rng);
  const auto gc = crypto::SecretKey::generate(rng);
  const auto bid_cfg = core::PpbsBidConfig::advanced(
      bmax, 3, 4, core::ZeroDisguisePolicy::linear(bmax, 0.3));
  const core::PpbsLocation protocol(g0, coord_width, lambda);
  const core::BidSubmitter submitter(bid_cfg, gb, gc);

  std::vector<Sample> samples;
  for (const std::size_t n : sizes) {
    const std::uint64_t hi =
        ((std::uint64_t{1} << coord_width) - 1) - 2 * lambda;
    std::vector<auction::SuLocation> locations(n);
    std::vector<auction::BidVector> bids(n);
    for (std::size_t i = 0; i < n; ++i) {
      locations[i] = {rng.below(hi + 1), rng.below(hi + 1)};
      bids[i].resize(num_channels);
      for (auto& b : bids[i]) b = rng.below(bmax + 1);
    }

    // Per-SU streams forked once and replayed for every thread count so
    // the submissions are identical across runs (checked below).
    Rng fork_master = rng.fork();
    std::vector<Rng> su_rngs;
    su_rngs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) su_rngs.push_back(fork_master.fork());

    std::vector<core::LocationSubmission> subs(n);
    std::vector<core::BidSubmission> bid_subs(n);
    for (const std::size_t t : thread_counts) {
      std::vector<core::LocationSubmission> run_subs(n);
      std::vector<core::BidSubmission> run_bids(n);
      std::vector<Rng> rngs = su_rngs;  // replay the same streams
      const double ms = time_ms([&] {
        parallel_for(n, t, [&](std::size_t i) {
          run_subs[i] = protocol.submit(locations[i], rngs[i]);
          run_bids[i] = submitter.submit(bids[i], rngs[i]);
        });
      });
      samples.push_back(sample("submit", n, t, ms));
      if (t == thread_counts.front()) {
        subs = std::move(run_subs);
        bid_subs = std::move(run_bids);
      } else if (!(run_subs == subs) || !(run_bids == bid_subs)) {
        std::cerr << "FATAL: submissions differ across thread counts\n";
        return 1;
      }
    }

    auction::ConflictGraph indexed(n);
    for (const std::size_t t : thread_counts) {
      double ms = time_ms([&] {
        indexed = core::PpbsLocation::build_conflict_graph(subs, t);
      });
      samples.push_back(sample("conflict_graph_indexed", n, t, ms));
    }
    if (n <= pairwise_cap) {
      auction::ConflictGraph pairwise(n);
      const double ms = time_ms([&] {
        pairwise = core::PpbsLocation::build_conflict_graph_pairwise(subs);
      });
      samples.push_back(sample("conflict_graph_pairwise", n, 1, ms));
      if (!(pairwise == indexed)) {
        std::cerr << "FATAL: indexed and pairwise conflict graphs differ\n";
        return 1;
      }
    }

    {
      // "auction" is the production path (sorted-column argmax; the table
      // construction, including the one-off O(n log n) column sort, is
      // inside the timed region).  "auction_scan" is the seed per-query
      // tournament, kept as the reference both for the speedup headline
      // and for the in-bench differential check: identical channel draws
      // must yield identical awards on both strategies.
      const Rng alloc_rng = rng.fork();
      std::vector<auction::Award> sorted_awards;
      for (const std::size_t t : thread_counts) {
        Rng run_rng = alloc_rng;  // replay the same channel-draw stream
        std::vector<auction::Award> awards;
        const double ms = time_ms([&] {
          core::EncryptedBidTable table(bid_subs, num_channels,
                                        core::ArgmaxStrategy::kSortedColumns, t);
          awards = auction::greedy_allocate(table, indexed, run_rng);
        });
        samples.push_back(sample("auction", n, t, ms));
        if (t == thread_counts.front()) {
          sorted_awards = std::move(awards);
        } else if (!(awards == sorted_awards)) {
          std::cerr << "FATAL: auction awards differ across thread counts\n";
          return 1;
        }
      }
      {
        Rng run_rng = alloc_rng;
        std::vector<auction::Award> awards;
        const double ms = time_ms([&] {
          core::EncryptedBidTable table(bid_subs, num_channels,
                                        core::ArgmaxStrategy::kTournamentScan);
          awards = auction::greedy_allocate(table, indexed, run_rng);
        });
        samples.push_back(sample("auction_scan", n, 1, ms));
        if (!(awards == sorted_awards)) {
          std::cerr << "FATAL: sorted-column and tournament-scan awards differ\n";
          return 1;
        }
      }

      // The geo-sharded server-side path, end to end: tile assignment,
      // per-shard conflict indexes + halo exchange, partitioned bid
      // table, allocation with the cross-shard argmax merge.  The
      // result must be byte-identical to the single-partition run — the
      // graph to `indexed`, the awards to `sorted_awards` — so the row
      // doubles as a differential gate at bench scale.
      for (const std::size_t num_shards : shard_counts) {
        const auto plan =
            shard::ShardPlan::make(coord_width, lambda, num_shards);
        for (const std::size_t t : thread_counts) {
          Rng run_rng = alloc_rng;
          shard::ShardAssignment assignment;
          core::ShardConflictStats stats;
          auction::ConflictGraph sharded_graph(n);
          std::vector<auction::Award> awards;
          const double ms = time_ms([&] {
            assignment = plan.assign(locations);
            sharded_graph = core::build_conflict_graph_sharded(
                subs, assignment, t, nullptr, &stats);
            core::ShardedBidTable table(bid_subs, num_channels,
                                        assignment.shard_of, num_shards,
                                        core::ArgmaxStrategy::kSortedColumns,
                                        t);
            awards = auction::greedy_allocate(table, sharded_graph, run_rng);
          });
          if (!(sharded_graph == indexed)) {
            std::cerr << "FATAL: sharded conflict graph differs from the "
                         "global build (shards=" << num_shards << ")\n";
            return 1;
          }
          if (!(awards == sorted_awards)) {
            std::cerr << "FATAL: sharded awards differ from the "
                         "single-partition run (shards=" << num_shards
                      << ")\n";
            return 1;
          }
          Sample s = sample("shard_scaling_" + std::to_string(num_shards), n,
                            t, ms);
          s.shards = num_shards;
          s.halo_edges = stats.halo_edges;
          s.boundary_sus = stats.boundary_sus;
          s.peak_index_bytes = stats.peak_index_bytes;
          samples.push_back(s);
        }
      }
    }
  }

  // Scale-out headline: the sharded conflict discovery at n >= 100k SUs.
  // The full-auction sweep stays at the sizes above (the all-pairs and
  // tournament references are super-linear); this block runs only the
  // linear-memory phases — location masking, the global indexed build
  // as the comparison row, and the per-shard halo-exchange build whose
  // peak index footprint the JSON records.
  if (args.full) {
    const std::size_t n = 102400;
    const std::uint64_t hi =
        ((std::uint64_t{1} << coord_width) - 1) - 2 * lambda;
    std::vector<auction::SuLocation> locations(n);
    for (auto& loc : locations) loc = {rng.below(hi + 1), rng.below(hi + 1)};
    Rng fork_master = rng.fork();
    std::vector<Rng> su_rngs;
    su_rngs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) su_rngs.push_back(fork_master.fork());
    std::vector<core::LocationSubmission> subs(n);
    {
      const double ms = time_ms([&] {
        parallel_for(n, multi, [&](std::size_t i) {
          subs[i] = protocol.submit(locations[i], su_rngs[i]);
        });
      });
      samples.push_back(sample("submit_locations_100k", n, multi, ms));
    }
    auction::ConflictGraph indexed(n);
    {
      const double ms = time_ms([&] {
        indexed = core::PpbsLocation::build_conflict_graph(subs, multi);
      });
      samples.push_back(sample("conflict_graph_indexed", n, multi, ms));
    }
    for (const std::size_t num_shards : shard_counts) {
      const auto plan = shard::ShardPlan::make(coord_width, lambda, num_shards);
      shard::ShardAssignment assignment;
      core::ShardConflictStats stats;
      auction::ConflictGraph sharded_graph(n);
      const double ms = time_ms([&] {
        assignment = plan.assign(locations);
        sharded_graph = core::build_conflict_graph_sharded(
            subs, assignment, multi, nullptr, &stats);
      });
      if (!(sharded_graph == indexed)) {
        std::cerr << "FATAL: sharded conflict graph differs at n=" << n
                  << " (shards=" << num_shards << ")\n";
        return 1;
      }
      Sample s = sample("shard_scaling_" + std::to_string(num_shards), n,
                        multi, ms);
      s.shards = num_shards;
      s.halo_edges = stats.halo_edges;
      s.boundary_sus = stats.boundary_sus;
      s.peak_index_bytes = stats.peak_index_bytes;
      samples.push_back(s);
      std::cout << "shard_scaling n=" << n << " shards=" << num_shards
                << ": peak per-shard index " << stats.peak_index_bytes
                << " bytes, " << stats.halo_edges << " halo edges, "
                << stats.boundary_sus << " boundary SUs\n";
    }
  }

  Table table({"phase", "n", "threads", "wall_ms", "throughput_su_per_s"});
  for (const Sample& s : samples) {
    table.add_row({s.phase, Table::cell(s.n), Table::cell(s.threads),
                   Table::cell(s.wall_ms, 3), Table::cell(s.throughput, 1)});
  }
  bench::emit(table, args, "PPBS hot-path scaling (submit / conflict graph / auction)");

  // Largest n that still has a pairwise baseline.
  std::size_t big = sizes.front();
  for (std::size_t s : sizes) {
    if (s <= pairwise_cap) big = std::max(big, s);
  }
  const double pair_ms = wall_of(samples, "conflict_graph_pairwise", big, 1);
  const double idx_ms = wall_of(samples, "conflict_graph_indexed", big, 1);
  if (idx_ms > 0.0 && pair_ms > 0.0) {
    std::cout << "indexed vs pairwise speedup at n=" << big << ": "
              << pair_ms / idx_ms << "x\n";
  }
  if (thread_counts.size() > 1) {
    const double s1 = wall_of(samples, "submit", big, 1);
    const double st = wall_of(samples, "submit", big, multi);
    if (st > 0.0) {
      const double speedup = s1 / st;
      std::cout << "submit speedup at n=" << big << " with " << multi
                << " threads: " << speedup << "x\n";
      // Thread-scaling gate.  Submission is embarrassingly parallel
      // (per-SU RNG streams, per-slot writes, immutable shared HMAC key
      // contexts), so on real multicore hardware 4 workers must beat 1 by
      // a wide margin; <1.5x would mean contention crept back in.  The
      // gate only arms when the host actually HAS >=4 cores and the
      // workload is big enough to drown scheduling overhead: the seed
      // baseline's flat line (4 threads == 1 thread at n>=1600) was
      // recorded on a 1-core container, where a CPU-bound phase cannot
      // scale no matter how it is written — hardware, not contention
      // (docs/performance.md, "Thread scaling").
      const bool gate_armed =
          ThreadPool::hardware_threads() >= 4 && multi >= 4 && big >= 1600;
      if (gate_armed && speedup < 1.5) {
        std::cerr << "FATAL: submit speedup " << speedup << "x with " << multi
                  << " threads on " << ThreadPool::hardware_threads()
                  << " cores is below the 1.5x floor\n";
        return 1;
      }
      if (!gate_armed) {
        std::cout << "(scaling gate not armed: "
                  << ThreadPool::hardware_threads() << " hardware core(s), "
                  << multi << " workers, largest n=" << big
                  << " — a CPU-bound phase cannot beat the physical core "
                     "count; see docs/performance.md)\n";
      }
    }
  }
  const double auc_ms = wall_of(samples, "auction", big, 1);
  const double scan_ms = wall_of(samples, "auction_scan", big, 1);
  if (auc_ms > 0.0 && scan_ms > 0.0) {
    std::cout << "sorted-column vs tournament-scan auction speedup at n="
              << big << ": " << scan_ms / auc_ms << "x\n";
  }
  if (thread_counts.size() > 1) {
    // Sharded-phase thread-scaling gate, armed under the same hardware
    // condition as the submit gate: shards build and probe as
    // independent tasks, so with >= 4 physical cores and >= 4 shards the
    // multi-thread run must beat the serial one.  On a 1-core container
    // the gate self-skips — same reasoning as the "Thread scaling" note
    // in docs/performance.md — and the floor is lower than submit's
    // because the allocation tail of the phase is serial.
    const std::size_t gate_shards =
        *std::max_element(shard_counts.begin(), shard_counts.end());
    const std::string phase = "shard_scaling_" + std::to_string(gate_shards);
    const double sh1 = wall_of(samples, phase, big, 1);
    const double sht = wall_of(samples, phase, big, multi);
    if (sh1 > 0.0 && sht > 0.0) {
      const double speedup = sh1 / sht;
      std::cout << phase << " speedup at n=" << big << " with " << multi
                << " threads: " << speedup << "x\n";
      const bool gate_armed = ThreadPool::hardware_threads() >= 4 &&
                              multi >= 4 && big >= 1600 && gate_shards >= 4;
      if (gate_armed && speedup < 1.2) {
        std::cerr << "FATAL: " << phase << " speedup " << speedup
                  << "x with " << multi << " threads on "
                  << ThreadPool::hardware_threads()
                  << " cores is below the 1.2x floor\n";
        return 1;
      }
    }
  }

  const std::string json_path =
      args.json_path.empty() ? "BENCH_perf_scaling.json" : args.json_path;
  write_json(json_path, samples);
  std::cout << "wrote " << json_path << " (" << samples.size() << " samples)\n";

  // Mirror the samples into an obs registry — one span per timed phase
  // run, fed after the timed regions so the instrumentation itself costs
  // the hot loops nothing — and honor --metrics.
  obs::MetricsRegistry registry;
  for (const Sample& s : samples) {
    registry.record_span("bench." + s.phase, registry.next_span_id(),
                         /*parent=*/0, s.wall_ms * 1000.0);
  }
  bench::dump_metrics(registry, args);
  return 0;
}
