// Churn soak: incremental maintenance vs from-scratch rebuild
// (docs/performance.md, "Churn"; docs/robustness.md, "Churn under
// crashes").
//
// Phase 1 (soak): a seeded sim::ChurnSchedule drives arrivals,
// departures, moves and re-bids over a fixed slot roster for hundreds of
// rounds per (num_shards, threads) cell.  core::ChurnState applies each
// event as an O(Δ·w) delta; EVERY round the harness rebuilds the
// conflict graph, the shard assignment, and the encrypted bid table from
// scratch and asserts the maintained versions are identical —
// graph/assignment by ==, the table by its serialized byte image — then
// runs allocation + TTP charging on both sides under the same Rng and
// asserts byte-identical awards and charges.  The first cell's awards
// double as the cross-cell reference: every other (shards, threads)
// combination must reproduce them byte for byte.
//
// Phase 2 (crash): an AuctioneerSession ingests a round and then applies
// a churn_depart/churn_return sequence with a CrashPoint::kMidChurn
// checkpoint after every op.  For each checkpoint the session is killed
// there, rebuilt from its write-ahead journal via
// proto::replay_session_journal, and its snapshot() must equal the
// crash-free twin's snapshot at the same op — then the run resumes to
// the end and the final snapshots must match too.
//
// Any violated invariant is a hard failure (nonzero exit).  JSON dump:
// BENCH_abl_churn.json (passes tools/bench_compare.py --validate).
#include <chrono>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "core/churn_state.h"
#include "proto/fault.h"
#include "proto/journal.h"
#include "proto/parties.h"
#include "proto/session.h"
#include "sim/churn.h"

using namespace lppa;

namespace {

struct SoakCell {
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::size_t rounds = 0;
  std::size_t capacity = 0;
  std::size_t live_final = 0;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t moves = 0;
  std::size_t rebids = 0;
  double maintain_ms = 0.0;  ///< delta maintenance only (O(Δ·w)), summed
  double rebuild_ms = 0.0;   ///< from-scratch oracles only (O(n·w)), summed
  double alloc_ms = 0.0;     ///< allocation+charging (identical both sides)
  bool all_checks_passed = false;
};

struct CrashLeg {
  std::size_t checkpoints = 0;
  std::size_t recoveries = 0;
  std::size_t replayed_records = 0;
  bool snapshots_match = false;
};

[[noreturn]] void fail(const std::string& what) {
  std::cerr << "FAIL: " << what << "\n";
  std::exit(1);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// Phase 1: the soak.

SoakCell run_soak_cell(const sim::ChurnScheduleConfig& schedule_config,
                       std::size_t rounds, std::size_t num_shards,
                       std::size_t threads, obs::MetricsRegistry* metrics,
                       std::vector<std::vector<auction::Award>>* reference) {
  SoakCell cell;
  cell.shards = num_shards;
  cell.threads = threads;
  cell.rounds = rounds;
  cell.capacity = schedule_config.capacity;

  core::LppaConfig lcfg;
  lcfg.num_channels = schedule_config.num_channels;
  lcfg.lambda = schedule_config.lambda;
  lcfg.coord_width = schedule_config.coord_width;
  lcfg.bid = core::PpbsBidConfig::advanced(
      schedule_config.bmax, 3, 4,
      core::ZeroDisguisePolicy::none(schedule_config.bmax));
  lcfg.num_shards = num_shards;
  lcfg.num_threads = threads;
  lcfg.metrics = metrics;

  // One auction (and so one TTP key set) per cell, but the same TTP seed
  // and the same masking-Rng fork order in every cell: identical
  // schedules then produce identical masked submissions, which is what
  // makes the cross-cell award comparison meaningful.
  core::LppaAuction auction(lcfg, /*ttp_seed=*/77);
  const core::SuKeyBundle keys = auction.ttp().su_keys();
  const core::PpbsLocation location_protocol(
      keys.g0, lcfg.coord_width, lcfg.lambda, lcfg.pad_location_ranges);
  const core::BidSubmitter submitter(auction.ttp().config(), keys.gb_master,
                                     keys.gc);
  Rng mask_master(20130708);

  // Initial roster straight from the schedule's round-zero population.
  sim::ChurnSchedule schedule(schedule_config);
  const std::size_t capacity = schedule_config.capacity;
  std::vector<auction::SuLocation> locations(capacity);
  std::vector<core::LocationSubmission> loc_subs(capacity);
  std::vector<core::BidSubmission> bid_subs(capacity);
  const auction::BidVector zero_bids(lcfg.num_channels, 0);
  for (std::size_t u = 0; u < capacity; ++u) {
    Rng su_rng = mask_master.fork();
    if (schedule.live()[u]) {
      locations[u] = schedule.locations()[u];
      loc_subs[u] = location_protocol.submit(locations[u], su_rng);
      bid_subs[u] = submitter.submit(schedule.bids()[u], su_rng);
    } else {
      // Dead slot: no location digests, masked all-zero placeholder bid
      // (shape-valid; tombstoned inside ChurnState).
      bid_subs[u] = submitter.submit(zero_bids, su_rng);
    }
  }

  core::ChurnState state(lcfg, locations, loc_subs, bid_subs,
                         schedule.live());

  const bool first_cell = reference->empty();
  if (first_cell) reference->reserve(rounds);

  for (std::size_t round = 0; round < rounds; ++round) {
    // --- Apply this round's churn as deltas --------------------------------
    const auto events = schedule.next_round();
    const auto t_delta = std::chrono::steady_clock::now();
    for (const auto& ev : events) {
      Rng su_rng = mask_master.fork();
      switch (ev.kind) {
        case sim::ChurnEvent::Kind::kArrive:
          state.add_su(ev.user, ev.loc,
                       location_protocol.submit(ev.loc, su_rng),
                       submitter.submit(ev.bids, su_rng));
          ++cell.arrivals;
          break;
        case sim::ChurnEvent::Kind::kDepart:
          state.remove_su(ev.user);
          ++cell.departures;
          break;
        case sim::ChurnEvent::Kind::kMove:
          state.move_su(ev.user, ev.loc,
                        location_protocol.submit(ev.loc, su_rng));
          ++cell.moves;
          break;
        case sim::ChurnEvent::Kind::kRebid:
          state.rebid_su(ev.user, submitter.submit(ev.bids, su_rng));
          ++cell.rebids;
          break;
      }
    }
    cell.maintain_ms += ms_since(t_delta);

    // --- Rebuild oracles + bit-equality ------------------------------------
    const auto t_rebuild = std::chrono::steady_clock::now();
    const auction::ConflictGraph rebuilt_graph = state.rebuild_conflicts();
    const shard::ShardAssignment rebuilt_assignment =
        state.rebuild_assignment();
    core::ShardedBidTable rebuilt_table = state.rebuild_table();
    const Bytes rebuilt_image = rebuilt_table.serialize();
    cell.rebuild_ms += ms_since(t_rebuild);

    const std::string where = " (shards=" + std::to_string(num_shards) +
                              " threads=" + std::to_string(threads) +
                              " round=" + std::to_string(round) + ")";
    if (!(state.graph() == rebuilt_graph)) {
      fail("maintained conflict graph != rebuilt graph" + where);
    }
    if (!(state.assignment() == rebuilt_assignment)) {
      fail("maintained shard assignment != rebuilt assignment" + where);
    }
    if (state.serialize_table() != rebuilt_image) {
      fail("maintained table image != rebuilt table image" + where);
    }

    // --- Allocation + charging on both sides, same Rng ---------------------
    const std::uint64_t round_seed = 5000 + 13 * round;
    core::ShardedBidTable maintained_table = state.table_for_allocation();
    const auto t_alloc = std::chrono::steady_clock::now();
    Rng maintained_rng(round_seed);
    const auto maintained = auction.allocate_and_charge(
        state.bids(), state.graph(), maintained_table, state.live(),
        maintained_rng);
    Rng rebuilt_rng(round_seed);
    const auto rebuilt = auction.allocate_and_charge(
        state.bids(), rebuilt_graph, rebuilt_table, state.live(),
        rebuilt_rng);
    cell.alloc_ms += ms_since(t_alloc);

    if (!(maintained.awards == rebuilt.awards)) {
      fail("maintained awards/charges != rebuilt awards/charges" + where);
    }
    if (first_cell) {
      reference->push_back(maintained.awards);
    } else if (!(maintained.awards == (*reference)[round])) {
      fail("awards differ from the (shards=1, threads=1) reference" + where);
    }
  }

  cell.live_final = state.live_count();
  cell.all_checks_passed = true;
  return cell;
}

// ---------------------------------------------------------------------------
// Phase 2: crash recovery mid-churn.

struct ChurnOp {
  bool depart = true;  ///< false = churn_return
  std::size_t user = 0;
};

/// Runs the session flow: ingest everyone, then apply `ops` starting at
/// `first_op` on `session`, hitting a kMidChurn checkpoint after every
/// op.  Records the post-op snapshot into `snapshots` when non-null.
void drive_churn_ops(proto::AuctioneerSession& session,
                     const std::vector<ChurnOp>& ops, std::size_t first_op,
                     proto::CrashInjector& injector,
                     std::vector<Bytes>* snapshots) {
  for (std::size_t k = first_op; k < ops.size(); ++k) {
    if (ops[k].depart) {
      session.churn_depart(ops[k].user);
    } else {
      session.churn_return(ops[k].user);
    }
    if (snapshots != nullptr) snapshots->push_back(session.snapshot());
    injector.checkpoint(proto::CrashPoint::kMidChurn);
  }
}

CrashLeg run_crash_leg(obs::MetricsRegistry* metrics) {
  CrashLeg leg;
  const std::size_t n = 8;

  core::LppaConfig lcfg;
  lcfg.num_channels = 4;
  lcfg.lambda = 64;
  lcfg.coord_width = 12;
  lcfg.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  lcfg.metrics = metrics;

  core::TrustedThirdParty ttp(lcfg.bid, 123);
  const core::SuKeyBundle keys = ttp.su_keys();

  // Deterministic envelopes, identical in every run of the leg.
  std::vector<Bytes> loc_envelopes(n);
  std::vector<Bytes> bid_envelopes(n);
  Rng env_master(777);
  for (std::size_t u = 0; u < n; ++u) {
    Rng su_rng = env_master.fork();
    const proto::SuClient su(u, lcfg, keys);
    auction::SuLocation loc;
    loc.x = 100 + 231 * u;
    loc.y = 150 + 173 * u;
    auction::BidVector bids(lcfg.num_channels, 0);
    for (std::size_t r = 0; r < bids.size(); ++r) {
      bids[r] = static_cast<auction::Money>((3 * u + 2 * r) % 16);
    }
    loc_envelopes[u] = su.location_envelope(loc, su_rng);
    bid_envelopes[u] = su.bid_envelope(bids, su_rng);
  }

  const std::vector<ChurnOp> ops = {
      {true, 1}, {true, 4}, {false, 1}, {true, 2}, {false, 4}, {true, 1},
  };
  leg.checkpoints = ops.size();

  auto ingest_all = [&](proto::AuctioneerSession& session) {
    for (std::size_t u = 0; u < n; ++u) {
      std::string error;
      if (session.try_ingest(loc_envelopes[u], &error) !=
              proto::AuctioneerSession::IngestResult::kAccepted ||
          session.try_ingest(bid_envelopes[u], &error) !=
              proto::AuctioneerSession::IngestResult::kAccepted) {
        fail("crash leg: honest submission rejected: " + error);
      }
    }
  };

  // Crash-free twin: snapshot after every churn op is the recovery target.
  std::vector<Bytes> expected;
  {
    proto::AuctioneerSession session(lcfg, n);
    proto::RoundJournal journal;
    journal.append_round_start(n);
    session.attach_journal(&journal);
    ingest_all(session);
    proto::CrashInjector never;  // counts checkpoints, never fires
    drive_churn_ops(session, ops, 0, never, &expected);
    if (never.hits(proto::CrashPoint::kMidChurn) != ops.size()) {
      fail("crash leg: checkpoint census mismatch");
    }
  }

  // One crashed run per checkpoint: die there, replay the journal into a
  // fresh session, compare snapshots, then resume to the end.
  bool all_match = true;
  for (std::size_t nth = 0; nth < ops.size(); ++nth) {
    proto::RoundJournal journal;
    journal.append_round_start(n);
    proto::CrashInjector injector;
    injector.arm(proto::CrashPoint::kMidChurn, nth);
    bool crashed = false;
    {
      proto::AuctioneerSession session(lcfg, n);
      session.attach_journal(&journal);
      ingest_all(session);
      try {
        drive_churn_ops(session, ops, 0, injector, nullptr);
      } catch (const proto::CrashSignal&) {
        crashed = true;
      }
    }
    if (!crashed) fail("crash leg: armed kMidChurn checkpoint never fired");

    proto::AuctioneerSession recovered(lcfg, n);
    proto::RoundReport report;
    leg.replayed_records +=
        proto::replay_session_journal(journal, recovered, n, report);
    ++leg.recoveries;
    if (recovered.snapshot() != expected[nth]) {
      all_match = false;
      fail("crash leg: recovered snapshot differs at churn op " +
           std::to_string(nth));
    }
    // Resume: the journal picks back up where the dead process left it.
    recovered.attach_journal(&journal);
    proto::CrashInjector never;
    drive_churn_ops(recovered, ops, nth + 1, never, nullptr);
    if (recovered.snapshot() != expected.back()) {
      all_match = false;
      fail("crash leg: resumed final snapshot differs (crash at op " +
           std::to_string(nth) + ")");
    }
  }
  leg.snapshots_match = all_match;
  return leg;
}

// ---------------------------------------------------------------------------

void write_json(const std::string& path, const std::vector<SoakCell>& cells,
                const CrashLeg& leg) {
  std::ofstream out = bench::open_output_or_die(path);
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_object();
  w.key("soak").begin_array();
  for (const SoakCell& c : cells) {
    w.begin_object()
        .field("shards", c.shards)
        .field("threads", c.threads)
        .field("rounds", c.rounds)
        .field("capacity", c.capacity)
        .field("live_final", c.live_final)
        .field("arrivals", c.arrivals)
        .field("departures", c.departures)
        .field("moves", c.moves)
        .field("rebids", c.rebids)
        .field("maintain_ms", c.maintain_ms)
        .field("rebuild_ms", c.rebuild_ms)
        .field("alloc_ms", c.alloc_ms)
        .field("rebuild_over_maintain",
               c.maintain_ms > 0.0 ? c.rebuild_ms / c.maintain_ms : 0.0)
        .field("all_checks_passed", c.all_checks_passed)
        .end_object();
  }
  w.end_array();
  w.key("crash").begin_object()
      .field("checkpoints", leg.checkpoints)
      .field("recoveries", leg.recoveries)
      .field("replayed_records", leg.replayed_records)
      .field("snapshots_match", leg.snapshots_match)
      .end_object();
  w.end_object();
  out << "\n";
  bench::close_output_or_die(out, path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  // 4 cells x rounds: the --full soak clears 1000 churn rounds total.
  const std::size_t rounds = args.full ? 250 : (args.smoke ? 15 : 60);
  sim::ChurnScheduleConfig schedule_config;
  schedule_config.capacity = args.full ? 48 : (args.smoke ? 16 : 32);
  schedule_config.initial_live = schedule_config.capacity / 2;
  // Moderate churn: a handful of events per round, so the O(delta*w) vs
  // O(n*w) comparison reflects the regime the incremental path targets
  // (the correctness checks are churn-rate independent).
  schedule_config.arrive_prob = 0.15;
  schedule_config.depart_prob = 0.06;
  schedule_config.move_prob = 0.08;
  schedule_config.rebid_prob = 0.12;
  schedule_config.num_channels = args.full ? 8 : (args.smoke ? 4 : 6);
  schedule_config.bmax = 15;
  schedule_config.coord_width = 16;
  schedule_config.lambda = 512;
  schedule_config.seed = 20130708;

  obs::MetricsRegistry registry;
  std::vector<std::vector<auction::Award>> reference;
  std::vector<SoakCell> cells;
  Table table({"shards", "threads", "rounds", "events", "live_final",
               "maintain_ms", "rebuild_ms", "rebuild/maintain"});

  const std::vector<std::size_t> shard_counts = {1, 4};
  const std::vector<std::size_t> thread_counts =
      args.threads > 0 ? std::vector<std::size_t>{args.threads}
                       : std::vector<std::size_t>{1, 4};
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t threads : thread_counts) {
      const SoakCell cell = run_soak_cell(schedule_config, rounds, shards,
                                          threads, &registry, &reference);
      const std::size_t events =
          cell.arrivals + cell.departures + cell.moves + cell.rebids;
      table.add_row({Table::cell(cell.shards), Table::cell(cell.threads),
                     Table::cell(cell.rounds), Table::cell(events),
                     Table::cell(cell.live_final),
                     Table::cell(cell.maintain_ms, 1),
                     Table::cell(cell.rebuild_ms, 1),
                     Table::cell(cell.maintain_ms > 0.0
                                     ? cell.rebuild_ms / cell.maintain_ms
                                     : 0.0,
                                 2) +
                         "x"});
      cells.push_back(cell);
    }
  }

  const CrashLeg leg = run_crash_leg(&registry);

  write_json(args.json_path.empty() ? "BENCH_abl_churn.json" : args.json_path,
             cells, leg);
  bench::dump_metrics(registry, args);
  bench::emit(table, args,
              "Churn soak: incremental maintenance vs from-scratch rebuild "
              "(bit-identical every round)");
  std::cout << "crash leg: " << leg.recoveries << "/" << leg.checkpoints
            << " mid-churn crashes recovered to byte-identical snapshots\n"
            << "Expected: every soak cell passes every per-round equality\n"
               "check (the binary aborts otherwise); delta maintenance\n"
               "costs O(delta*w) per round against the rebuild's O(n*w),\n"
               "so rebuild/maintain grows with capacity over churn rate.\n";
  return 0;
}
