// Fig. 5(e): reduction of the winning-bid sum under LPPA relative to the
// plain auction, vs the zero-replace probability, for several population
// sizes.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<double> replace_probs = {0.1, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::size_t> populations =
      args.full ? std::vector<std::size_t>{100, 200, 300}
                : std::vector<std::size_t>{40, 80, 120};
  const std::size_t rounds = args.full ? 3 : 2;

  Table table({"replace_prob", "users", "plain_sum", "lppa_sum", "ratio",
               "reduction_%"});
  for (std::size_t n : populations) {
    auto cfg = bench::scenario_config(args, /*area_id=*/3);
    if (!args.full) cfg.fcc.num_channels = 40;  // keep the quick run quick
    cfg.num_users = n;
    sim::Scenario scenario(cfg);
    for (double replace : replace_probs) {
      const auto point =
          sim::run_performance_point(scenario, replace, 3, 4, rounds, 777);
      table.add_row({Table::cell(replace, 2), Table::cell(n),
                     Table::cell(point.plain_bid_sum, 1),
                     Table::cell(point.lppa_bid_sum, 1),
                     Table::cell(point.bid_sum_ratio, 3),
                     Table::cell(100.0 * (1.0 - point.bid_sum_ratio), 1)});
    }
  }
  bench::emit(table, args,
              "Fig 5(e) — winning-bid-sum under LPPA vs plain auction");
  std::cout << "Expected shape: ratio falls from ~0.95 toward ~0.7 as the\n"
               "replace probability rises to 1; the population size has\n"
               "little effect (the protocol scales).\n";
  return 0;
}
