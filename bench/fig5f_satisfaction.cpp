// Fig. 5(f): user satisfaction (fraction of interested bidders holding a
// validly-charged channel) under LPPA vs the plain auction.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<double> replace_probs = {0.1, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::size_t> populations =
      args.full ? std::vector<std::size_t>{100, 200, 300}
                : std::vector<std::size_t>{40, 80, 120};
  const std::size_t rounds = args.full ? 3 : 2;

  Table table({"replace_prob", "users", "plain_satisfaction",
               "lppa_satisfaction", "ratio"});
  for (std::size_t n : populations) {
    auto cfg = bench::scenario_config(args, /*area_id=*/3);
    if (!args.full) cfg.fcc.num_channels = 40;
    cfg.num_users = n;
    sim::Scenario scenario(cfg);
    for (double replace : replace_probs) {
      const auto point =
          sim::run_performance_point(scenario, replace, 3, 4, rounds, 888);
      table.add_row({Table::cell(replace, 2), Table::cell(n),
                     Table::cell(point.plain_satisfaction, 3),
                     Table::cell(point.lppa_satisfaction, 3),
                     Table::cell(point.satisfaction_ratio, 3)});
    }
  }
  bench::emit(table, args,
              "Fig 5(f) — user satisfaction under LPPA vs plain auction");
  std::cout << "Expected shape: satisfaction ratio declines from ~0.95\n"
               "toward ~0.7 as the replace probability reaches 1, roughly\n"
               "independent of the population size.\n";
  return 0;
}
