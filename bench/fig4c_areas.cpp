// Fig. 4(c): BCM + BPM results across the four areas under the
// full-channel auction.  Terrain drives the differences: rural areas
// (crisp coverage edges) are attacked more precisely than urban ones
// (ragged shadowed coverage), and one dense-metro area produces very
// large BCM outputs.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<double> fractions = {1.0, 0.5, 0.25, 0.125};

  Table table({"area", "terrain", "bpm_fraction", "bcm_cells", "bpm_cells",
               "bpm_success"});
  for (int area = 1; area <= 4; ++area) {
    const auto cfg = bench::scenario_config(args, area);
    const sim::Scenario scenario(cfg);
    for (double f : fractions) {
      const auto point =
          sim::run_attack_point(scenario, cfg.fcc.num_channels, f, 250);
      table.add_row({Table::cell(area),
                     geo::area_preset(area).name,
                     Table::cell(f, 3),
                     Table::cell(point.bcm.mean_possible_cells, 1),
                     Table::cell(point.bpm.mean_possible_cells, 1),
                     Table::cell(1.0 - point.bpm.failure_rate, 3)});
    }
  }
  bench::emit(table, args, "Fig 4(c) — BCM and BPM across Areas 1-4");
  std::cout << "Expected shape: rural/exurban areas (3, 4) geo-locate\n"
               "users more tightly than the urban presets (1, 2); the\n"
               "dense-metro preset (2) yields the largest BCM sets.\n";
  return 0;
}
