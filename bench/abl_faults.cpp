// Robustness ablation: the hardened wire round under escalating message
// faults (docs/robustness.md).
//
// Sweeps the per-link drop rate, then mixes in Byzantine SUs, and for
// every cell reports who survived, how many retry waves the round
// needed, and whether the survivors' awards are byte-identical to a
// fault-free round restricted to the same survivors — the determinism
// contract the fault tests pin.  The last column is the point of the
// layer: graceful degradation keeps every cell "yes" until the retry
// budget itself is exhausted.
#include <algorithm>
#include <fstream>

#include "bench_util.h"
#include "proto/fault.h"
#include "proto/session.h"

using namespace lppa;

namespace {

struct FaultCell {
  double drop = 0.0;
  std::size_t byzantine = 0;
  proto::RoundReport report;
  bool awards_match_restricted = false;
};

// Machine-readable dump: one object per sweep cell, the full RoundReport
// spliced in via its stable to_json() schema (the same obs::json emitter
// end to end).  Default path BENCH_abl_faults.json.
void write_json(const std::string& path, const std::vector<FaultCell>& cells) {
  std::ofstream out = bench::open_output_or_die(path);
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_array();
  for (const FaultCell& c : cells) {
    w.begin_object()
        .field("drop", c.drop)
        .field("byzantine", c.byzantine)
        .field("awards_match_restricted", c.awards_match_restricted);
    w.key("report").raw(c.report.to_json());
    w.end_object();
  }
  w.end_array();
  out << "\n";
  bench::close_output_or_die(out, path);
}

// One hardened round under `spec` with `byzantine` marked, compared
// against the fault-free round that excludes exactly the parties lost.
// `metrics` (nullable) observes the faulty run only: bus traffic, fault
// verdicts, TTP batches, session ingest verdicts, wire-phase spans.
FaultCell run_cell(const core::LppaConfig& config,
                   const std::vector<auction::SuLocation>& locations,
                   const std::vector<auction::BidVector>& bids,
                   const proto::FaultSpec& spec,
                   const std::vector<std::size_t>& byzantine,
                   std::uint64_t seed, obs::MetricsRegistry* metrics) {
  FaultCell cell;
  cell.drop = spec.drop;
  cell.byzantine = byzantine.size();

  core::TrustedThirdParty ttp(config.bid, 77 + seed);
  ttp.set_metrics(metrics);
  proto::MessageBus bus;
  bus.set_metrics(metrics);
  proto::FaultInjector injector(seed, spec);
  injector.set_metrics(metrics);
  for (std::size_t b : byzantine) {
    injector.mark_byzantine(proto::Address::su(b));
  }
  bus.set_fault_injector(&injector);
  core::LppaConfig observed = config;
  observed.metrics = metrics;
  Rng rng(5 + seed);
  const auto faulty = proto::run_hardened_wire_auction(
      observed, ttp, locations, bids, bus, rng);
  cell.report = faulty.report;

  std::vector<std::size_t> lost;
  for (const auto& e : faulty.report.excluded) lost.push_back(e.user);
  std::sort(lost.begin(), lost.end());

  core::TrustedThirdParty clean_ttp(config.bid, 77 + seed);
  proto::MessageBus clean_bus;
  Rng clean_rng(5 + seed);
  const auto clean = proto::run_hardened_wire_auction(
      config, clean_ttp, locations, bids, clean_bus, clean_rng, {}, lost);
  cell.awards_match_restricted =
      faulty.report.completed && clean.awards == faulty.awards;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto cfg = bench::scenario_config(args, /*area_id=*/3);
  cfg.fcc.num_channels = args.full ? 24 : 12;
  cfg.num_users = args.full ? 60 : 30;
  sim::Scenario scenario(cfg);

  core::LppaConfig lcfg;
  lcfg.num_channels = cfg.fcc.num_channels;
  lcfg.lambda = cfg.lambda_m;
  lcfg.coord_width = scenario.coord_width();
  lcfg.bid = core::PpbsBidConfig::advanced(
      cfg.bmax, 3, 4, core::ZeroDisguisePolicy::none(cfg.bmax));

  Table table({"drop", "byzantine", "survivors", "retry_waves", "rejected",
               "faults_injected", "completed", "awards_match_restricted"});
  std::vector<FaultCell> cells;
  obs::MetricsRegistry registry;  // aggregated across all faulty cells
  const std::vector<double> drop_rates{0.0, 0.05, 0.10, 0.20, 0.30};
  const std::vector<std::size_t> byzantine_counts{0, 2};
  for (std::size_t nb : byzantine_counts) {
    std::vector<std::size_t> byzantine;
    for (std::size_t b = 0; b < nb; ++b) {
      byzantine.push_back(3 + 4 * b);  // spread through the population
    }
    for (double drop : drop_rates) {
      proto::FaultSpec spec;
      spec.drop = drop;
      const FaultCell cell =
          run_cell(lcfg, scenario.locations(), scenario.bids(), spec,
                   byzantine, 4242, &registry);
      const auto& f = cell.report.faults;
      table.add_row(
          {Table::cell(drop, 2), Table::cell(nb),
           Table::cell(cell.report.survivors.size()),
           Table::cell(cell.report.retry_waves),
           Table::cell(cell.report.rejected_messages),
           Table::cell(f.drops + f.duplicates + f.reorders + f.corruptions +
                       f.delays),
           cell.report.completed ? "yes" : "NO",
           cell.awards_match_restricted ? "yes" : "NO"});
      cells.push_back(cell);
    }
  }
  write_json(args.json_path.empty() ? "BENCH_abl_faults.json" : args.json_path,
             cells);
  bench::dump_metrics(registry, args);
  bench::emit(table, args,
              "Hardened round under drop + Byzantine faults "
              "(awards vs fault-free run restricted to survivors)");
  std::cout
      << "Expected: every row completes; Byzantine SUs are excluded and\n"
         "drop-rate rows keep all survivors via nack/retransmit waves;\n"
         "awards always match the fault-free run restricted to the same\n"
         "survivors (the determinism contract of docs/robustness.md).\n";
  return 0;
}
