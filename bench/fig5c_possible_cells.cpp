// Fig. 5(c): number of possible location cells (all attacked users) vs
// the zero-replace probability.
#include "fig5_defense.h"

int main(int argc, char** argv) {
  using namespace lppa;
  return bench::run_defense_figure(
      argc, argv,
      bench::DefenseFigure{
          "Fig 5(c) — possible location cells under LPPA, Area 3",
          "possible_cells",
          "Expected shape: roughly stable at low replace probability,\n"
          "then bursting upward once disguised zeros flood the\n"
          "attacker's inferred availability sets.",
          [](const core::AggregateMetrics& m) {
            return m.mean_possible_cells;
          }});
}
