// Ablation of the advanced bid-submission fixes (DESIGN.md's design-choice
// index): starting from the basic scheme, enable each countermeasure and
// measure what the curious auctioneer can still extract.
//
//   (i)   per-channel keys   -> can the attacker read each user's
//                               available-channel support directly?
//   (ii)  zero disguise      -> how well does per-column ranking recover
//                               true availability?
//   (iii) offset rd          -> frequency analysis of the zero ciphertext
//   (v)   range padding      -> cardinality analysis of range covers
#include <map>
#include <set>

#include "bench_util.h"
#include "crypto/sealed_box.h"

using namespace lppa;

namespace {

// Fraction of users whose full available-channel set the attacker can
// read by comparing the user's own bids pairwise (possible only when all
// channels share one HMAC key): with a shared key the attacker orders a
// user's bids, calls everything above the minimum "available" — the §IV-C
// "first phase" leak.
double direct_support_leak(const sim::Scenario& scenario,
                           const core::PpbsBidConfig& cfg, std::uint64_t seed) {
  const core::TrustedThirdParty ttp(cfg, seed);
  const auto subs =
      sim::make_submissions(scenario, cfg, ttp.su_keys(), seed + 1);
  std::size_t exact = 0;
  for (std::size_t u = 0; u < subs.size(); ++u) {
    const auto& channels = subs[u].channels;
    // The attacker finds the column-minimum via masked comparisons, then
    // marks every strictly-greater channel as available.
    std::vector<std::size_t> support;
    for (std::size_t r = 0; r < channels.size(); ++r) {
      bool is_min = true;
      for (std::size_t s = 0; s < channels.size(); ++s) {
        if (s != r && !core::encrypted_ge(channels[s], channels[r])) {
          is_min = false;
          break;
        }
      }
      if (!is_min) support.push_back(r);
    }
    // Ground truth support (positive bids).
    std::vector<std::size_t> truth;
    const auto& bids = scenario.users()[u].bids;
    for (std::size_t r = 0; r < bids.size(); ++r) {
      if (bids[r] > 0) truth.push_back(r);
    }
    if (support == truth) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(subs.size());
}

// Mean Jaccard similarity between the attacker's rank-inferred
// availability sets and the truth — measures fix (ii).
double rank_inference_quality(const sim::Scenario& scenario,
                              const core::PpbsBidConfig& cfg,
                              std::uint64_t seed) {
  const core::TrustedThirdParty ttp(cfg, seed);
  const auto subs =
      sim::make_submissions(scenario, cfg, ttp.su_keys(), seed + 1);
  const core::LppaAdversary adversary(scenario.dataset());
  const auto inferred = adversary.infer_available_sets(subs, 0.5);
  double total = 0.0;
  for (std::size_t u = 0; u < subs.size(); ++u) {
    std::set<std::size_t> truth;
    const auto& bids = scenario.users()[u].bids;
    for (std::size_t r = 0; r < bids.size(); ++r) {
      if (bids[r] > 0) truth.insert(r);
    }
    const std::set<std::size_t> guess(inferred[u].begin(), inferred[u].end());
    std::size_t inter = 0;
    for (std::size_t r : guess) inter += truth.count(r);
    const std::size_t uni = truth.size() + guess.size() - inter;
    total += uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
  }
  return total / static_cast<double>(subs.size());
}

// Can the attacker isolate the zero price by ciphertext frequency?  Count
// the share of all submitted value-families that collide with another
// identical family (without rd+cr, all zeros of a column encrypt alike).
double ciphertext_collision_rate(const sim::Scenario& scenario,
                                 const core::PpbsBidConfig& cfg,
                                 std::uint64_t seed) {
  const core::TrustedThirdParty ttp(cfg, seed);
  const auto subs =
      sim::make_submissions(scenario, cfg, ttp.su_keys(), seed + 1);
  std::size_t colliding = 0, total = 0;
  const std::size_t k = subs.front().channels.size();
  for (std::size_t r = 0; r < k; ++r) {
    std::map<std::string, std::size_t> freq;
    for (const auto& sub : subs) {
      std::string key;
      for (const auto& d : sub.channels[r].value_family.digests()) {
        key += d.hex();
      }
      ++freq[key];
    }
    for (const auto& [key, count] : freq) {
      total += count;
      if (count > 1) colliding += count;
    }
  }
  return static_cast<double>(colliding) / static_cast<double>(total);
}

// Spread of range-cover cardinalities across submissions (0 once padded).
std::size_t range_cardinality_spread(const sim::Scenario& scenario,
                                     const core::PpbsBidConfig& cfg,
                                     std::uint64_t seed) {
  const core::TrustedThirdParty ttp(cfg, seed);
  const auto subs =
      sim::make_submissions(scenario, cfg, ttp.su_keys(), seed + 1);
  std::size_t lo = ~std::size_t{0}, hi = 0;
  for (const auto& sub : subs) {
    for (const auto& ch : sub.channels) {
      lo = std::min(lo, ch.range_set.size());
      hi = std::max(hi, ch.range_set.size());
    }
  }
  return hi - lo;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  auto cfg = bench::scenario_config(args, /*area_id=*/3);
  cfg.fcc.num_channels = args.full ? 40 : 20;
  cfg.num_users = args.full ? 60 : 30;
  const sim::Scenario scenario(cfg);
  const auction::Money bmax = cfg.bmax;

  auto variant = [&](bool per_channel_keys, bool pad, auction::Money rd,
                     std::uint64_t cr, double replace) {
    core::PpbsBidConfig c;
    c.enc = core::BidEncodingParams{bmax, rd, cr};
    c.policy = core::ZeroDisguisePolicy::uniform(bmax, replace);
    c.per_channel_keys = per_channel_keys;
    c.pad_range_sets = pad;
    return c;
  };

  Table table({"variant", "support_leak", "rank_jaccard",
               "ct_collision", "range_card_spread"});
  struct Row {
    std::string name;
    core::PpbsBidConfig cfg;
  };
  const std::vector<Row> rows = {
      {"basic (no fixes)", variant(false, false, 0, 1, 0.0)},
      {"+ per-channel keys (i)", variant(true, false, 0, 1, 0.0)},
      {"+ rd offset + cr map (iii,iv)", variant(true, false, 3, 4, 0.0)},
      {"+ wider rd*cr (zero band 289)", variant(true, false, 16, 17, 0.0)},
      {"+ range padding (v)", variant(true, true, 3, 4, 0.0)},
      {"+ zero disguise 0.5 (ii) = full", variant(true, true, 3, 4, 0.5)},
      {"full, disguise 1.0", variant(true, true, 3, 4, 1.0)},
  };
  for (const auto& row : rows) {
    table.add_row(
        {row.name,
         Table::cell(direct_support_leak(scenario, row.cfg, 11), 3),
         Table::cell(rank_inference_quality(scenario, row.cfg, 13), 3),
         Table::cell(ciphertext_collision_rate(scenario, row.cfg, 17), 3),
         Table::cell(range_cardinality_spread(scenario, row.cfg, 19))});
  }
  bench::emit(table, args, "Ablation — what each advanced-scheme fix closes");
  std::cout
      << "Expected: the basic scheme leaks full bid support (column 2 high,\n"
         "ciphertext collisions high, cardinality spread > 0); per-channel\n"
         "keys kill the direct support read; rd+cr kill ciphertext\n"
         "collisions; padding zeroes the cardinality spread; zero-disguise\n"
         "degrades the rank-inference Jaccard toward noise.\n";
  return 0;
}
