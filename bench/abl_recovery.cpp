// Recovery-overhead ablation: what crash tolerance costs
// (docs/robustness.md).
//
// For each population size, runs the crash-free recoverable round (the
// journaling overhead itself) and then one crashed run per crash point,
// recovering from the write-ahead journal.  Reports wall time against
// the crash-free run, the durable journal size, and how many records
// replay had to re-apply — and checks the recovery contract per cell:
// awards byte-identical to the crash-free run.  Machine-readable dump
// via RoundReport::to_json() lands in BENCH_recovery.json.
#include <chrono>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "proto/fault.h"
#include "proto/journal.h"
#include "proto/session.h"

using namespace lppa;

namespace {

const char* point_name(proto::CrashPoint point) {
  switch (point) {
    case proto::CrashPoint::kAfterIngest: return "after_ingest";
    case proto::CrashPoint::kAfterFinalize: return "after_finalize";
    case proto::CrashPoint::kAfterAllocation: return "after_allocation";
    case proto::CrashPoint::kAfterChargeCommit: return "after_charge_commit";
    case proto::CrashPoint::kBeforePublish: return "before_publish";
    case proto::CrashPoint::kMidChurn: return "mid_churn";
  }
  return "?";
}

struct RecoveryCell {
  std::size_t n = 0;
  std::string crash_point;  ///< "none" for the crash-free baseline
  double wall_ms = 0.0;
  double clean_wall_ms = 0.0;
  std::size_t journal_bytes = 0;
  std::size_t replayed_records = 0;
  bool awards_match = false;
  proto::RoundReport report;
};

struct TimedRun {
  proto::RecoverableWireResult result;
  double wall_ms = 0.0;
};

TimedRun run_once(const core::LppaConfig& config,
                  const std::vector<auction::SuLocation>& locations,
                  const std::vector<auction::BidVector>& bids,
                  proto::CrashInjector* crashes, std::uint64_t seed,
                  obs::MetricsRegistry* metrics) {
  core::TrustedThirdParty ttp(config.bid, 77 + seed);
  ttp.set_metrics(metrics);
  proto::MessageBus bus;
  bus.set_metrics(metrics);
  core::LppaConfig observed = config;
  observed.metrics = metrics;
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = proto::run_recoverable_wire_auction(
      observed, ttp, locations, bids, bus, 5 + seed, {}, crashes);
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return run;
}

void write_json(const std::string& path,
                const std::vector<RecoveryCell>& cells) {
  std::ofstream out = bench::open_output_or_die(path);
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_array();
  for (const RecoveryCell& c : cells) {
    w.begin_object()
        .field("n", c.n)
        .field("crash_point", std::string_view(c.crash_point))
        .field("wall_ms", c.wall_ms)
        .field("clean_wall_ms", c.clean_wall_ms)
        .field("journal_bytes", c.journal_bytes)
        .field("replayed_records", c.replayed_records)
        .field("awards_match", c.awards_match);
    w.key("report").raw(c.report.to_json());
    w.end_object();
  }
  w.end_array();
  out << "\n";
  bench::close_output_or_die(out, path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<std::size_t> populations =
      args.full ? std::vector<std::size_t>{20, 40, 80}
                : std::vector<std::size_t>{10, 20, 40};
  std::vector<RecoveryCell> cells;
  obs::MetricsRegistry registry;  // aggregated across every run
  Table table({"n", "crash_point", "wall_ms", "overhead_vs_clean",
               "journal_bytes", "replayed", "awards_match"});

  for (const std::size_t n : populations) {
    auto cfg = bench::scenario_config(args, /*area_id=*/3);
    cfg.fcc.num_channels = args.full ? 24 : 12;
    cfg.num_users = n;
    sim::Scenario scenario(cfg);

    core::LppaConfig lcfg;
    lcfg.num_channels = cfg.fcc.num_channels;
    lcfg.lambda = cfg.lambda_m;
    lcfg.coord_width = scenario.coord_width();
    lcfg.bid = core::PpbsBidConfig::advanced(
        cfg.bmax, 3, 4, core::ZeroDisguisePolicy::none(cfg.bmax));

    // Crash-free baseline: the journaling overhead with nothing to
    // recover.  The counting injector doubles as the per-point census
    // for the crashed runs below.
    proto::CrashInjector counter;
    const TimedRun clean = run_once(lcfg, scenario.locations(),
                                    scenario.bids(), &counter, n, &registry);
    RecoveryCell base;
    base.n = n;
    base.crash_point = "none";
    base.wall_ms = clean.wall_ms;
    base.clean_wall_ms = clean.wall_ms;
    base.journal_bytes = clean.result.report.journal_bytes;
    base.replayed_records = 0;
    base.awards_match = true;
    base.report = clean.result.report;
    cells.push_back(base);
    table.add_row({Table::cell(n), "none", Table::cell(clean.wall_ms, 2), "-",
                   Table::cell(base.journal_bytes), Table::cell(0),
                   "yes"});

    for (std::size_t p = 0; p < proto::kNumCrashPoints; ++p) {
      const auto point = static_cast<proto::CrashPoint>(p);
      if (counter.hits(point) == 0) continue;
      // Crash at the midpoint occurrence of the phase: representative of
      // a half-done phase rather than the cheap first hit.
      proto::CrashInjector injector;
      injector.arm(point, counter.hits(point) / 2);
      const TimedRun crashed = run_once(lcfg, scenario.locations(),
                                        scenario.bids(), &injector, n,
                                        &registry);

      RecoveryCell cell;
      cell.n = n;
      cell.crash_point = point_name(point);
      cell.wall_ms = crashed.wall_ms;
      cell.clean_wall_ms = clean.wall_ms;
      cell.journal_bytes = crashed.result.report.journal_bytes;
      cell.replayed_records = crashed.result.report.replayed_records;
      cell.awards_match = crashed.result.awards == clean.result.awards &&
                          crashed.result.announcement ==
                              clean.result.announcement;
      cell.report = crashed.result.report;
      cells.push_back(cell);
      const double overhead =
          clean.wall_ms > 0.0 ? crashed.wall_ms / clean.wall_ms : 0.0;
      table.add_row({Table::cell(n), cell.crash_point,
                     Table::cell(crashed.wall_ms, 2),
                     Table::cell(overhead, 2) + "x",
                     Table::cell(cell.journal_bytes),
                     Table::cell(cell.replayed_records),
                     cell.awards_match ? "yes" : "NO"});
    }
  }

  write_json(args.json_path.empty() ? "BENCH_recovery.json" : args.json_path,
             cells);
  bench::dump_metrics(registry, args);
  bench::emit(table, args,
              "Crash-recovery overhead per crash point "
              "(wall time vs crash-free recoverable round)");
  std::cout
      << "Expected: every crashed cell recovers to byte-identical awards\n"
         "(awards_match=yes); replay cost scales with how much of the\n"
         "round was journaled before the crash, and the journal itself\n"
         "grows linearly in the population size.\n";
  return 0;
}
