// Theorems 1-3 table: closed forms vs Monte-Carlo ground truth across a
// parameter grid, plus the exact re-derivation of Theorem 2 (the paper's
// printed boundary-tie factor is a strict lower bound — see
// EXPERIMENTS.md).
#include "bench_util.h"
#include "core/theorems.h"

int main(int argc, char** argv) {
  using namespace lppa;
  namespace thm = core::theorems;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t trials = args.full ? 500000 : 100000;
  const core::Money bmax = 15;

  {
    Table table({"b_N", "m", "replace", "thm1_closed", "thm1_mc", "abs_err"});
    Rng rng(1);
    for (core::Money b_n : {core::Money{3}, core::Money{8}, core::Money{14}}) {
      for (std::size_t m : {2u, 8u, 20u}) {
        for (double replace : {0.3, 0.7, 1.0}) {
          const auto policy = core::ZeroDisguisePolicy::uniform(bmax, replace);
          const double closed = thm::thm1_zero_not_win(b_n, m, policy);
          const double mc = thm::thm1_monte_carlo(b_n, m, policy, trials, rng);
          table.add_row({Table::cell(static_cast<long long>(b_n)),
                         Table::cell(m), Table::cell(replace, 2),
                         Table::cell(closed, 4), Table::cell(mc, 4),
                         Table::cell(std::abs(closed - mc), 4)});
        }
      }
    }
    bench::emit(table, args,
                "Theorem 1 — P[zero does not win] closed form vs MC");
  }

  {
    Table table({"b_N", "m", "t", "replace", "paper", "exact", "mc"});
    Rng rng(2);
    for (core::Money b_n : {core::Money{5}, core::Money{10}}) {
      for (std::size_t m : {6u, 12u}) {
        for (std::size_t t : {2u, 4u}) {
          for (double replace : {0.6, 1.0}) {
            const auto policy =
                core::ZeroDisguisePolicy::uniform(bmax, replace);
            const double paper = thm::thm2_no_leakage(b_n, m, t, policy);
            const double exact = thm::thm2_no_leakage_exact(b_n, m, t, policy);
            const double mc =
                thm::thm2_monte_carlo(b_n, m, t, policy, trials, rng);
            table.add_row({Table::cell(static_cast<long long>(b_n)),
                           Table::cell(m), Table::cell(t),
                           Table::cell(replace, 2), Table::cell(paper, 4),
                           Table::cell(exact, 4), Table::cell(mc, 4)});
          }
        }
      }
    }
    bench::emit(table, args,
                "Theorem 2 — P[no leakage] as printed vs exact vs MC");
  }

  {
    Table table({"bids", "m", "t", "thm3_as_printed", "thm3_mc"});
    Rng rng(3);
    const std::vector<core::Money> bids = {3, 7, 11};
    for (std::size_t m : {4u, 10u}) {
      for (std::size_t t : {1u, 2u, 4u}) {
        const double closed = thm::thm3_expected_true_bids(bids, m, t, bmax);
        const double mc =
            thm::thm3_monte_carlo(bids, m, t, bmax, trials, rng);
        table.add_row({"{3,7,11}", Table::cell(m), Table::cell(t),
                       Table::cell(closed, 4), Table::cell(mc, 4)});
      }
    }
    bench::emit(table, args,
                "Theorem 3 — E[true bids selected] as printed vs MC");
    std::cout << "The Theorem 3 closed form is implemented exactly as\n"
                 "printed in the paper; the MC column is the ground truth\n"
                 "under the best-protection policy (see EXPERIMENTS.md).\n";
  }
  return 0;
}
