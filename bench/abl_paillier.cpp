// Crypto-backend head-to-head: LPPA's hash-based masking (HmacPrefix)
// vs the Paillier tier built on the paper's [7] (Pan et al., JSAC'11).
//
// The paper dismisses [7] as requiring "a large number of communication
// costs, which does not fit an efficient auction mechanism".  Since the
// BidBackend refactor both schemes run the SAME auction end to end —
// conflict graph, greedy allocation, TTP charging, recovery — so the
// comparison is no longer a synthetic floor: phase 3 runs full
// LppaAuction rounds per backend and reports submit/auction wall time,
// masked-bid bytes on the wire, and the Paillier oracle's per-op
// counters at growing key sizes.
//
// Paillier runs at toy key sizes (n^2 must fit 64 bits); the primitive
// table reports the measured scaling across sizes next to the wire
// costs at the 2048-bit modulus [7] actually needs (ciphertext = 4096
// bits).  JSON dump: BENCH_abl_paillier.json (passes
// tools/bench_compare.py --validate).
#include <chrono>
#include <fstream>

#include "bench_util.h"
#include "core/lppa_auction.h"
#include "crypto/paillier.h"

using namespace lppa;

namespace {

template <typename Fn>
double time_per_op_us(std::size_t iterations, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         static_cast<double>(iterations);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct PrimitiveRow {
  int prime_bits = 0;
  int ct_bits = 0;
  double encrypt_us = 0.0;
  double decrypt_us = 0.0;
  double compare_us = 0.0;
};

struct HeadToHeadCell {
  std::string backend;
  int prime_bits = 0;  ///< 0 = HMAC (no Paillier key)
  int ct_bits = 0;     ///< Paillier ciphertext bits (0 for HMAC)
  std::size_t users = 0;
  std::size_t rounds = 0;
  double submit_ms = 0.0;   ///< SU-side bid encoding, all users x rounds
  double auction_ms = 0.0;  ///< full rounds: submit+conflict+alloc+charge
  std::size_t bid_wire_bytes = 0;  ///< masked bids on the wire, one round
  std::size_t oracle_compares = 0;  ///< Paillier ge() round-trips, total
  std::size_t oracle_decrypts = 0;  ///< Paillier charging decrypts, total
  std::size_t awards = 0;
  std::size_t valid_awards = 0;
};

/// One backend through the full engine: `rounds` complete auctions over
/// a fixed world, SU submission cost measured separately.
HeadToHeadCell run_head_to_head(crypto::BidBackendId backend, int prime_bits,
                                std::size_t n, std::size_t rounds) {
  core::LppaConfig cfg;
  cfg.num_channels = 3;
  cfg.lambda = 100;
  cfg.coord_width = 14;
  cfg.bid = core::PpbsBidConfig::advanced(15, 3, 4,
                                          core::ZeroDisguisePolicy::none(15));
  cfg.bid.backend = backend;
  if (backend == crypto::BidBackendId::kPaillier) {
    cfg.bid.paillier_prime_bits = prime_bits;
  }
  cfg.charging_rule = core::ChargingRule::kSecondPrice;  // strategyproof tier
  cfg.ttp_batch_size = 8;

  core::LppaAuction engine(cfg, /*ttp_seed=*/77);

  Rng world_rng(21);
  std::vector<auction::SuLocation> locations;
  std::vector<core::BidVector> bids;
  for (std::size_t i = 0; i < n; ++i) {
    locations.push_back({world_rng.below(5000), world_rng.below(5000)});
    auction::BidVector bv(cfg.num_channels);
    for (auto& b : bv) b = world_rng.below(16);
    bids.push_back(bv);
  }

  HeadToHeadCell cell;
  cell.backend = engine.config().backend->name();
  cell.prime_bits =
      backend == crypto::BidBackendId::kPaillier ? prime_bits : 0;
  cell.users = n;
  cell.rounds = rounds;

  // SU-side encoding cost in isolation (what each bidder's device pays).
  const core::SuKeyBundle keys = engine.ttp().su_keys();
  if (keys.paillier.has_value()) {
    cell.ct_bits = keys.paillier->ciphertext_bits();
  }
  const core::BidSubmitter submitter(engine.ttp().config(), keys.gb_master,
                                     keys.gc, keys.paillier);
  {
    Rng rng(5);
    std::size_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        sink += submitter.submit(bids[i], rng).wire_size();
      }
    }
    cell.submit_ms = ms_since(t0);
    cell.bid_wire_bytes = sink / rounds;
  }

  // Full rounds through the engine (its own submissions included — this
  // is the end-to-end wall time an auction round costs on each backend).
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    Rng round_rng(1000 + 13 * r);
    const auto out = engine.run(locations, bids, round_rng);
    if (r + 1 == rounds) {
      cell.awards = out.outcome.awards.size();
      for (const auto& a : out.outcome.awards) {
        if (a.valid) ++cell.valid_awards;
      }
    }
  }
  cell.auction_ms = ms_since(t0);

  if (const auto* oracle = engine.ttp().paillier_oracle()) {
    cell.oracle_compares = oracle->compares();
    cell.oracle_decrypts = oracle->decrypts();
  }
  return cell;
}

void write_json(const std::string& path,
                const std::vector<PrimitiveRow>& primitives,
                const std::vector<HeadToHeadCell>& cells) {
  std::ofstream out = bench::open_output_or_die(path);
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_object();
  w.key("primitives").begin_array();
  for (const PrimitiveRow& p : primitives) {
    w.begin_object()
        .field("prime_bits", p.prime_bits)
        .field("ct_bits", p.ct_bits)
        .field("encrypt_us", p.encrypt_us)
        .field("decrypt_us", p.decrypt_us)
        .field("compare_us", p.compare_us)
        .end_object();
  }
  w.end_array();
  w.key("head_to_head").begin_array();
  for (const HeadToHeadCell& c : cells) {
    w.begin_object()
        .field("backend", c.backend)
        .field("prime_bits", c.prime_bits)
        .field("ct_bits", c.ct_bits)
        .field("users", c.users)
        .field("rounds", c.rounds)
        .field("submit_ms", c.submit_ms)
        .field("auction_ms", c.auction_ms)
        .field("bid_wire_bytes", c.bid_wire_bytes)
        .field("oracle_compares", c.oracle_compares)
        .field("oracle_decrypts", c.oracle_decrypts)
        .field("awards", c.awards)
        .field("valid_awards", c.valid_awards)
        .end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  bench::close_output_or_die(out, path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t iters = args.full ? 20000 : (args.smoke ? 2000 : 5000);
  Rng rng(7);

  std::vector<PrimitiveRow> primitives;
  {
    Table table({"prime_bits", "ct_bits", "encrypt_us", "decrypt_us",
                 "compare_us(hom+dec)"});
    for (int bits : {8, 12, 16}) {
      const auto keys = crypto::paillier_keygen(bits, rng);
      std::uint64_t sink = 0;
      const double enc_us = time_per_op_us(iters, [&](std::size_t i) {
        sink ^= keys.pub.encrypt(i % keys.pub.n, rng);
      });
      std::vector<std::uint64_t> cts;
      for (int i = 0; i < 64; ++i) {
        cts.push_back(keys.pub.encrypt(static_cast<std::uint64_t>(i), rng));
      }
      const double dec_us = time_per_op_us(iters, [&](std::size_t i) {
        sink ^= keys.priv.decrypt(cts[i % cts.size()], keys.pub);
      });
      const double cmp_us = time_per_op_us(iters, [&](std::size_t i) {
        // Hom. subtraction (a * b^(n-1)), blinding, then a decryption.
        const auto& a = cts[i % cts.size()];
        const auto& b = cts[(i + 1) % cts.size()];
        const std::uint64_t diff =
            keys.pub.add(a, keys.pub.scale(b, keys.pub.n - 1));
        const std::uint64_t blinded =
            keys.pub.scale(diff, 1 + (i % 97));
        sink ^= keys.priv.decrypt(blinded, keys.pub);
      });
      table.add_row({Table::cell(bits),
                     Table::cell(keys.pub.ciphertext_bits()),
                     Table::cell(enc_us, 2), Table::cell(dec_us, 2),
                     Table::cell(cmp_us, 2)});
      primitives.push_back({bits, keys.pub.ciphertext_bits(), enc_us, dec_us,
                            cmp_us});
      if (sink == 0xdeadbeef) std::cout << "";  // keep the sink alive
    }
    bench::emit(table, args,
                "Paillier primitive costs across toy key sizes");
  }

  // Head-to-head: full LppaAuction rounds per backend, second-price rule
  // on both sides (the Paillier strategyproof tier and its HMAC twin).
  std::vector<HeadToHeadCell> cells;
  {
    const std::size_t n = args.full ? 64 : (args.smoke ? 12 : 24);
    const std::size_t rounds = args.full ? 10 : (args.smoke ? 2 : 4);
    cells.push_back(run_head_to_head(crypto::BidBackendId::kHmacPrefix,
                                     /*prime_bits=*/0, n, rounds));
    for (int bits : {8, 12, 16}) {
      cells.push_back(
          run_head_to_head(crypto::BidBackendId::kPaillier, bits, n, rounds));
    }

    Table table({"backend", "prime_bits", "users", "rounds", "submit_ms",
                 "auction_ms", "bid_wire_B", "oracle_cmp", "oracle_dec"});
    for (const HeadToHeadCell& c : cells) {
      table.add_row({c.backend, Table::cell(c.prime_bits),
                     Table::cell(c.users), Table::cell(c.rounds),
                     Table::cell(c.submit_ms, 2), Table::cell(c.auction_ms, 2),
                     Table::cell(c.bid_wire_bytes),
                     Table::cell(c.oracle_compares),
                     Table::cell(c.oracle_decrypts)});
    }
    bench::emit(table, args,
                "Head-to-head: full second-price rounds per crypto backend");
    std::cout
        << "Expected: HMAC submission builds w+1 digests per cell but its\n"
           "comparisons are local set intersections; the Paillier tier's\n"
           "cells are one u64 ciphertext (smaller wire at toy sizes — a\n"
           "real 2048-bit modulus ships 512 B/cell) while every masked\n"
           "comparison is a homomorphic-subtract + blinded decryption\n"
           "round-trip through the TTP oracle, visible in oracle_cmp and\n"
           "auction_ms growth with prime_bits — the paper's \"large\n"
           "communication costs\" claim, now measured inside the very\n"
           "same auction loop.\n";
  }

  write_json(
      args.json_path.empty() ? "BENCH_abl_paillier.json" : args.json_path,
      primitives, cells);
  return 0;
}
