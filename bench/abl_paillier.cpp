// Baseline comparator: the Paillier-based secure auction of the paper's
// [7] (Pan et al., IEEE JSAC'11) vs LPPA's hash-based masking.
//
// The paper dismisses [7] as requiring "a large number of communication
// costs, which does not fit an efficient auction mechanism".  We measure
// a charitable floor for [7]: each bid is one Paillier ciphertext, and
// each masked comparison costs one homomorphic subtraction + blinding +
// one decryption round-trip to the distributed-auctioneer coalition
// (2 ciphertexts on the wire).  LPPA's comparison is one local sorted-set
// intersection with zero online communication.
//
// Paillier runs at toy key sizes (n^2 must fit 64 bits); the table
// reports the measured scaling across sizes next to the wire costs at
// the 2048-bit modulus [7] actually needs (ciphertext = 4096 bits).
#include <chrono>

#include "bench_util.h"
#include "crypto/paillier.h"

using namespace lppa;

namespace {

template <typename Fn>
double time_per_op_us(std::size_t iterations, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t iters = args.full ? 20000 : 5000;
  Rng rng(7);

  {
    Table table({"prime_bits", "ct_bits", "encrypt_us", "decrypt_us",
                 "compare_us(hom+dec)"});
    for (int bits : {8, 12, 16}) {
      const auto keys = crypto::paillier_keygen(bits, rng);
      std::uint64_t sink = 0;
      const double enc_us = time_per_op_us(iters, [&](std::size_t i) {
        sink ^= keys.pub.encrypt(i % keys.pub.n, rng);
      });
      std::vector<std::uint64_t> cts;
      for (int i = 0; i < 64; ++i) {
        cts.push_back(keys.pub.encrypt(static_cast<std::uint64_t>(i), rng));
      }
      const double dec_us = time_per_op_us(iters, [&](std::size_t i) {
        sink ^= keys.priv.decrypt(cts[i % cts.size()], keys.pub);
      });
      const double cmp_us = time_per_op_us(iters, [&](std::size_t i) {
        // Hom. subtraction (a * b^(n-1)), blinding, then a decryption.
        const auto& a = cts[i % cts.size()];
        const auto& b = cts[(i + 1) % cts.size()];
        const std::uint64_t diff =
            keys.pub.add(a, keys.pub.scale(b, keys.pub.n - 1));
        const std::uint64_t blinded =
            keys.pub.scale(diff, 1 + (i % 97));
        sink ^= keys.priv.decrypt(blinded, keys.pub);
      });
      table.add_row({Table::cell(bits),
                     Table::cell(keys.pub.ciphertext_bits()),
                     Table::cell(enc_us, 2), Table::cell(dec_us, 2),
                     Table::cell(cmp_us, 2)});
      if (sink == 0xdeadbeef) std::cout << "";  // keep the sink alive
    }
    bench::emit(table, args,
                "Paillier primitive costs across toy key sizes");
  }

  {
    // Column-max search over N bids: LPPA vs the Paillier floor.
    Rng key_rng(11);
    const auto gb = crypto::SecretKey::generate(key_rng);
    const auto gc = crypto::SecretKey::generate(key_rng);
    const auto cfg = core::PpbsBidConfig::advanced(
        15, 3, 4, core::ZeroDisguisePolicy::none(15));
    const core::BidSubmitter submitter(cfg, gb, gc);
    const auto keys = crypto::paillier_keygen(16, rng);

    Table table({"N", "lppa_max_us", "lppa_online_bytes",
                 "paillier_max_us", "paillier_online_bytes_2048bit"});
    std::size_t sink2 = 0;
    for (std::size_t n : {8u, 32u, 128u}) {
      std::vector<core::ChannelBidSubmission> masked;
      std::vector<std::uint64_t> cts;
      for (std::size_t i = 0; i < n; ++i) {
        masked.push_back(submitter.encode_bid(0, rng.below(16), rng));
        cts.push_back(keys.pub.encrypt(rng.below(16), rng));
      }
      const double lppa_us = time_per_op_us(200, [&](std::size_t) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
          if (!core::encrypted_ge(masked[best], masked[i])) best = i;
        }
        sink2 += best;
      });
      const double paillier_us = time_per_op_us(200, [&](std::size_t) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
          const std::uint64_t diff = keys.pub.add(
              cts[best], keys.pub.scale(cts[i], keys.pub.n - 1));
          const std::uint64_t blinded = keys.pub.scale(diff, 13);
          // The coalition's decryption decides the comparison.
          const std::uint64_t plain = keys.priv.decrypt(blinded, keys.pub);
          if (plain > keys.pub.n / 2) best = i;  // negative => i greater
        }
        sink2 += best;
      });
      // Online bytes: LPPA max search is local (0); the Paillier floor
      // ships 2 ciphertexts per comparison at [7]'s 2048-bit modulus.
      const std::size_t paillier_bytes = (n - 1) * 2 * (4096 / 8);
      if (sink2 == 0xdeadbeef) std::cout << "";
      table.add_row({Table::cell(n), Table::cell(lppa_us, 1), "0",
                     Table::cell(paillier_us, 1),
                     Table::cell(paillier_bytes)});
    }
    bench::emit(table, args,
                "Column max search — LPPA intersections vs Paillier floor");
    std::cout
        << "Expected: LPPA's max search is local and linear with cheap\n"
           "digest intersections; the Paillier route pays a decryption\n"
           "round-trip per comparison (already visible at toy key sizes;\n"
           "modexp grows ~cubically in modulus bits toward [7]'s 2048)\n"
           "plus ~1 KiB of coalition traffic per comparison — the paper's\n"
           "\"large communication costs\" claim, quantified.\n";
  }
  return 0;
}
