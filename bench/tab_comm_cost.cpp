// Theorem 4 table: predicted transmission volume h*k*N*(3w-1)(w+1)
// against the measured volume of real advanced-scheme submissions.  The
// digest volume matches the prediction exactly (the construction sends
// (w+1) + (2w-2) digests of 256 bits per user-channel); the wire column
// adds framing and the sealed TTP payload.
#include "bench_util.h"
#include "core/theorems.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  struct Config {
    std::size_t users, channels;
    auction::Money bmax, rd;
    std::uint64_t cr;
  };
  const std::vector<Config> configs = {
      {20, 10, 15, 3, 4},   {40, 10, 15, 3, 4},  {20, 40, 15, 3, 4},
      {20, 10, 255, 16, 8}, {10, 129, 15, 3, 4},
  };

  Table table({"users", "channels", "w", "predicted_kbits", "digest_kbits",
               "wire_kbits", "wire_overhead_%"});
  for (const auto& c : configs) {
    const auto row =
        sim::measure_comm_cost(c.users, c.channels, c.bmax, c.rd, c.cr, 99);
    table.add_row(
        {Table::cell(c.users), Table::cell(c.channels), Table::cell(row.width),
         Table::cell(row.predicted_bits / 1000.0, 1),
         Table::cell(row.measured_digest_bits / 1000.0, 1),
         Table::cell(row.measured_wire_bits / 1000.0, 1),
         Table::cell(100.0 * (row.measured_wire_bits - row.predicted_bits) /
                         row.predicted_bits,
                     1)});
  }
  bench::emit(table, args,
              "Theorem 4 — predicted vs measured submission volume");
  std::cout << "Expected: predicted == digest volume exactly; cost is\n"
               "linear in N and k (compare rows 1-3 and 5).\n";
  return 0;
}
