// Ablation: what does Algorithm 3's random channel rotation cost?
//
// PSD picks channels uniformly at random because the masked domain
// forbids cross-channel bid comparisons (per-channel keys gb_r).  A
// non-private auctioneer could instead serve the globally largest bids
// first.  This bench runs both allocation orders on identical plaintext
// worlds and reports the revenue/satisfaction gap — the price of the
// privacy-compatible allocation order, independent of zero-disguise.
#include "auction/plain_auction.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  auto cfg = bench::scenario_config(args, /*area_id=*/3);
  cfg.fcc.num_channels = args.full ? 60 : 30;
  const std::vector<std::size_t> populations =
      args.full ? std::vector<std::size_t>{50, 100, 200}
                : std::vector<std::size_t>{40, 80, 120};
  const std::size_t rounds = 5;

  Table table({"users", "alg3_revenue", "global_revenue", "revenue_ratio",
               "alg3_winners", "global_winners"});
  for (std::size_t n : populations) {
    cfg.num_users = n;
    sim::Scenario scenario(cfg);
    double alg3_rev = 0, global_rev = 0;
    double alg3_winners = 0, global_winners = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
      scenario.resample_users(1000 + round);
      const auto locations = scenario.locations();
      const auto bids = scenario.bids();
      const auto conflicts =
          auction::ConflictGraph::from_locations(locations, cfg.lambda_m);

      // Algorithm 3 (random rotation), first-price charging.
      const auction::PlainAuction plain(cfg.fcc.num_channels, cfg.lambda_m);
      Rng rng(round + 7);
      const auto outcome = plain.run(locations, bids, rng);
      alg3_rev += static_cast<double>(outcome.winning_bid_sum());
      alg3_winners += static_cast<double>(outcome.satisfied_winners());

      // Global greedy (largest bid first).
      auto awards = auction::global_greedy_allocate(bids, conflicts);
      double rev = 0;
      double winners = 0;
      for (const auto& a : awards) {
        const auto bid = bids[a.user][a.channel];
        rev += static_cast<double>(bid);
        winners += bid > 0 ? 1.0 : 0.0;
      }
      global_rev += rev;
      global_winners += winners;
    }
    table.add_row({Table::cell(n), Table::cell(alg3_rev / rounds, 1),
                   Table::cell(global_rev / rounds, 1),
                   Table::cell(alg3_rev / global_rev, 3),
                   Table::cell(alg3_winners / rounds, 1),
                   Table::cell(global_winners / rounds, 1)});
  }
  bench::emit(table, args,
              "Ablation — Algorithm 3 rotation vs global greedy order");
  std::cout << "Expected: the random rotation concedes roughly 15-20% of\n"
               "revenue to the privacy-incompatible global order (the gap\n"
               "narrows as the population grows) while serving virtually\n"
               "the same number of winners — the measurable price of\n"
               "making allocation run without cross-channel comparisons.\n";
  return 0;
}
