// Fig. 5(d): attack failure rate (true cell outside the candidate set)
// vs the zero-replace probability.
#include "fig5_defense.h"

int main(int argc, char** argv) {
  using namespace lppa;
  return bench::run_defense_figure(
      argc, argv,
      bench::DefenseFigure{
          "Fig 5(d) — attack failure rate under LPPA, Area 3",
          "failure_rate",
          "Expected shape: far above the 0.0 no-LPPA baseline;\n"
          "generally rising with the replace probability and with\n"
          "non-monotone stretches (forged availability first degrades\n"
          "the attack, then stray genuine channels pull some failures\n"
          "back), approaching ~1 for the 100% attacker.",
          [](const core::AggregateMetrics& m) { return m.failure_rate; }});
}
