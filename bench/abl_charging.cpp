// Extension study: first-price (the paper's rule) vs second-price (the
// paper's declared future work, implemented in core::ChargingRule).
//
// Two measurements:
//   1. Revenue under both rules on identical worlds.
//   2. A bid-shading experiment: one bidder's expected utility
//      (value - charge when winning) as it declares a shaded fraction of
//      its true value.  Under first price, shading pays — the utility
//      curve peaks below 1.0; under second price the truthful
//      declaration is (weakly) optimal, which is the dominant-strategy
//      property the paper wants.
#include "auction/plain_auction.h"
#include "bench_util.h"
#include "core/lppa_auction.h"

using namespace lppa;

namespace {

// Expected utility of user 0 when declaring `declared` while valuing the
// channel at `value`, against a fixed field of rivals, under `rule`.
double shading_utility(auction::Money value, auction::Money declared,
                       core::ChargingRule rule, std::size_t rounds) {
  double utility = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng world(9000 + round);
    std::vector<auction::SuLocation> locs;
    std::vector<auction::BidVector> bids;
    // User 0 plus five rivals, all conflicting (single winner).
    for (int i = 0; i < 6; ++i) locs.push_back({10, 10});
    bids.push_back({declared});
    for (int i = 1; i < 6; ++i) {
      bids.push_back({static_cast<auction::Money>(world.below(13))});
    }

    core::LppaConfig cfg;
    cfg.num_channels = 1;
    cfg.lambda = 100;
    cfg.coord_width = 10;
    cfg.bid = core::PpbsBidConfig::advanced(
        15, 3, 4, core::ZeroDisguisePolicy::none(15));
    cfg.charging_rule = rule;
    core::LppaAuction engine(cfg, 31 + round);
    Rng rng(100 + round);
    const auto outcome = engine.run(locs, bids, rng);
    for (const auto& award : outcome.outcome.awards) {
      if (award.user == 0 && award.valid) {
        utility += static_cast<double>(value) -
                   static_cast<double>(award.charge);
      }
    }
  }
  return utility / static_cast<double>(rounds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t rounds = args.full ? 400 : 150;

  {
    // Revenue comparison on a realistic world.
    auto cfg = bench::scenario_config(args, /*area_id=*/3);
    cfg.fcc.num_channels = 24;
    cfg.num_users = 50;
    sim::Scenario scenario(cfg);
    Table table({"rule", "revenue", "valid_winners"});
    for (auto rule : {core::ChargingRule::kFirstPrice,
                      core::ChargingRule::kSecondPrice}) {
      core::LppaConfig lcfg;
      lcfg.num_channels = cfg.fcc.num_channels;
      lcfg.lambda = cfg.lambda_m;
      lcfg.coord_width = scenario.coord_width();
      lcfg.bid = core::PpbsBidConfig::advanced(
          cfg.bmax, 3, 4, core::ZeroDisguisePolicy::linear(cfg.bmax, 0.3));
      lcfg.charging_rule = rule;
      core::LppaAuction engine(lcfg, 17);
      Rng rng(3);
      const auto outcome =
          engine.run(scenario.locations(), scenario.bids(), rng);
      table.add_row({rule == core::ChargingRule::kFirstPrice ? "first-price"
                                                             : "second-price",
                     Table::cell(outcome.outcome.winning_bid_sum()),
                     Table::cell(outcome.outcome.satisfied_winners())});
    }
    bench::emit(table, args, "Charging rules — revenue on one world");
  }

  {
    // Shading experiment: true value 12, declared 4..15.
    const auction::Money value = 12;
    Table table({"declared_bid", "utility_first_price",
                 "utility_second_price"});
    for (auction::Money declared = 4; declared <= 15; ++declared) {
      table.add_row(
          {Table::cell(static_cast<long long>(declared)),
           Table::cell(shading_utility(value, declared,
                                       core::ChargingRule::kFirstPrice,
                                       rounds),
                       3),
           Table::cell(shading_utility(value, declared,
                                       core::ChargingRule::kSecondPrice,
                                       rounds),
                       3)});
    }
    bench::emit(table, args,
                "Bid shading — expected utility of a bidder valuing 12");
    std::cout
        << "Expected: the first-price utility peaks at a declared bid\n"
           "strictly below the true value 12 (shading pays — the rule is\n"
           "not truthful, as the paper concedes); the second-price\n"
           "utility is maximised at the truthful declaration 12, and\n"
           "over-bidding past 12 cannot help.\n";
  }
  return 0;
}
