// Fig. 5(a): attacker uncertainty (entropy of the posterior over the
// candidate set, all attacked users) vs the zero-replace probability,
// one curve per attacker top-percentage, with the no-LPPA baselines.
#include "fig5_defense.h"

int main(int argc, char** argv) {
  using namespace lppa;
  return bench::run_defense_figure(
      argc, argv,
      bench::DefenseFigure{
          "Fig 5(a) — uncertainty (nats) under LPPA, Area 3",
          "uncertainty",
          "Expected shape: LPPA keeps uncertainty at or above the BCM\n"
          "baseline; larger attacker percentages lower it, rising\n"
          "replace probability eventually inflates it.",
          [](const core::AggregateMetrics& m) {
            return m.mean_uncertainty_nats;
          }});
}
