// Microbenchmark for the crypto hot path behind PPBS submission.
//
// Three questions, one JSON artifact (BENCH_micro_crypto.json):
//   1. Raw SHA-256 compression throughput (streaming a large buffer) —
//      the hard ceiling every HMAC number divides into.
//   2. One-shot HMAC-SHA-256 over u64 messages (4 compressions: ipad,
//      inner finalise, opad, outer finalise) vs the midstate-cached
//      HmacKeyCtx path (2 compressions) — the per-digest win behind the
//      submit-phase speedup.
//   3. The batched API (hmac_sha256_u64_batch semantics through a held
//      context), which is what prefix/hashed_set actually calls.
//
// Schema matches perf_scaling's conventions: a JSON array of flat
// objects, one per (bench, iters) sample, throughput in ops/s (or MB/s
// for the stream bench, flagged by the unit field).
#include <chrono>
#include <fstream>

#include "bench_util.h"
#include "crypto/hmac.h"

namespace {

using namespace lppa;

struct Sample {
  std::string bench;
  std::size_t iters = 0;
  double wall_ms = 0.0;
  double throughput = 0.0;
  std::string unit;  // "ops/s" or "MB/s"
};

template <typename Fn>
double time_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void write_json(const std::string& path, const std::vector<Sample>& samples) {
  std::ofstream out = bench::open_output_or_die(path);
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_array();
  for (const Sample& s : samples) {
    w.begin_object()
        .field("bench", std::string_view(s.bench))
        .field("iters", s.iters)
        .field("wall_ms", s.wall_ms)
        .field("throughput", s.throughput)
        .field("unit", std::string_view(s.unit))
        .end_object();
  }
  w.end_array();
  out << "\n";
  bench::close_output_or_die(out, path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = lppa::bench::BenchArgs::parse(argc, argv);

  const std::size_t stream_mib = args.smoke ? 4 : (args.full ? 64 : 16);
  const std::size_t hmac_iters =
      args.smoke ? 50'000 : (args.full ? 1'000'000 : 250'000);

  Rng rng(20130708);
  const auto key = crypto::SecretKey::generate(rng);
  std::vector<Sample> samples;

  std::cout << "sha256 compression: "
            << (crypto::Sha256::accelerated() ? "x86 SHA extensions"
                                              : "portable scalar")
            << "\n";

  // --- 1. SHA-256 compression throughput --------------------------------
  {
    std::vector<std::uint8_t> buf(stream_mib * 1024 * 1024);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    crypto::Digest d;
    const double ms = time_ms([&] {
      d = crypto::Sha256::hash(std::span<const std::uint8_t>(buf));
    });
    Sample s;
    s.bench = "sha256_stream";
    s.iters = buf.size() / 64;  // compression-function invocations
    s.wall_ms = ms;
    s.throughput = bench::rate_per_sec(static_cast<double>(stream_mib), ms);
    s.unit = "MB/s";
    samples.push_back(s);
    // Keep the digest observable so the hash is not dead code.
    std::cout << "sha256(" << stream_mib << " MiB) = " << d.hex().substr(0, 16)
              << "...  " << s.throughput << " MB/s\n";
  }

  // --- 2. one-shot vs midstate-cached HMAC over u64 ----------------------
  std::vector<std::uint64_t> values(hmac_iters);
  for (auto& v : values) v = rng.next();

  std::uint64_t oneshot_acc = 0, midstate_acc = 0, batch_acc = 0;
  {
    const double ms = time_ms([&] {
      for (const std::uint64_t v : values) {
        oneshot_acc ^= crypto::hmac_sha256_u64(key, v).fingerprint();
      }
    });
    samples.push_back({"hmac_u64_oneshot", hmac_iters, ms,
                       bench::rate_per_sec(static_cast<double>(hmac_iters), ms),
                       "ops/s"});
  }
  {
    const crypto::HmacKeyCtx ctx(key);
    const double ms = time_ms([&] {
      for (const std::uint64_t v : values) {
        midstate_acc ^= ctx.mac_u64(v).fingerprint();
      }
    });
    samples.push_back({"hmac_u64_midstate", hmac_iters, ms,
                       bench::rate_per_sec(static_cast<double>(hmac_iters), ms),
                       "ops/s"});
  }

  // --- 3. the batch API (what hashed_set calls) ---------------------------
  {
    std::vector<crypto::Digest> out(values.size());
    const double ms = time_ms([&] {
      crypto::hmac_sha256_u64_batch(key, values, out);
    });
    for (const auto& d : out) batch_acc ^= d.fingerprint();
    samples.push_back({"hmac_u64_batch", hmac_iters, ms,
                       bench::rate_per_sec(static_cast<double>(hmac_iters), ms),
                       "ops/s"});
  }

  // The three paths must be digest-identical — this is the property the
  // hmac tests pin; re-checked here so a bench run can never publish
  // numbers for a broken fast path.
  if (oneshot_acc != midstate_acc || oneshot_acc != batch_acc) {
    std::cerr << "FATAL: one-shot / midstate / batch HMAC digests disagree\n";
    return 1;
  }

  Table table({"bench", "iters", "wall_ms", "throughput", "unit"});
  for (const Sample& s : samples) {
    table.add_row({s.bench, Table::cell(s.iters), Table::cell(s.wall_ms, 3),
                   Table::cell(s.throughput, 1), s.unit});
  }
  lppa::bench::emit(table, args,
                    "crypto micro: SHA-256 blocks, HMAC one-shot vs midstate vs batch");

  const double one = samples[1].wall_ms, mid = samples[2].wall_ms;
  if (mid > 0.0) {
    std::cout << "midstate-cached HMAC speedup over one-shot: " << one / mid
              << "x\n";
  }

  const std::string json_path =
      args.json_path.empty() ? "BENCH_micro_crypto.json" : args.json_path;
  write_json(json_path, samples);
  std::cout << "wrote " << json_path << " (" << samples.size() << " samples)\n";

  obs::MetricsRegistry registry;
  for (const Sample& s : samples) {
    registry.record_span("bench." + s.bench, registry.next_span_id(),
                         /*parent=*/0, s.wall_ms * 1000.0);
  }
  lppa::bench::dump_metrics(registry, args);
  return 0;
}
