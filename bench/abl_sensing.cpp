// Ablation: what do sensing errors do to the attacks, before any
// deliberate defence?
//
// The BCM attack rests on "an SU only bids on channels available at its
// position".  With database-driven availability that is exact; with
// energy-detection sensing, misses and false alarms break it — an SU
// that bids on a protected channel poisons its own BCM intersection the
// same way a disguised zero would.  This bench sweeps the sensing noise
// and reports attack quality plus the interference exposure (bids on
// protected channels) the operator pays for that accidental privacy.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<double> sigmas = {0.0, 1.0, 2.0, 4.0, 8.0};

  Table table({"sigma_db", "bcm_cells", "bcm_failure", "bpm_failure",
               "interference_bids_%"});
  for (double sigma : sigmas) {
    auto cfg = bench::scenario_config(args, /*area_id=*/4);
    cfg.fcc.num_channels = args.full ? 60 : 30;
    cfg.num_users = 60;
    cfg.initial_phase = sim::InitialPhase::kSpectrumSensing;
    cfg.sensing.measurement_sigma_db = sigma;
    cfg.sensing.averaging = 2;
    const sim::Scenario scenario(cfg);

    const auto point =
        sim::run_attack_point(scenario, cfg.fcc.num_channels, 0.5, 250);

    std::size_t interference = 0, positive = 0;
    for (const auto& su : scenario.users()) {
      const std::size_t cell = scenario.dataset().grid().index(su.cell);
      for (std::size_t r = 0; r < su.bids.size(); ++r) {
        if (su.bids[r] == 0) continue;
        ++positive;
        if (!scenario.dataset().availability(r).contains(cell)) {
          ++interference;
        }
      }
    }
    table.add_row(
        {Table::cell(sigma, 1), Table::cell(point.bcm.mean_possible_cells, 1),
         Table::cell(point.bcm.failure_rate, 3),
         Table::cell(point.bpm.failure_rate, 3),
         Table::cell(positive ? 100.0 * interference / positive : 0.0, 2)});
  }
  bench::emit(table, args,
              "Ablation — sensing errors vs the attacks (no defence)");
  std::cout << "Expected: with exact sensing the attacks behave as in\n"
               "Fig. 4; rising measurement noise makes SUs bid on\n"
               "protected channels, which empties BCM intersections\n"
               "(failure climbs) — accidental privacy paid for in\n"
               "interference exposure (last column).\n";
  return 0;
}
