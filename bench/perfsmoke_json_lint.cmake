# ctest script behind perfsmoke_json_lint (bench/CMakeLists.txt): run
# perf_scaling --smoke with both dump flags, then strict-lint the JSON
# artifacts with bench_compare.py --validate.  Variables: BENCH_EXE,
# COMPARE, PYTHON, OUT_DIR.
set(json_out ${OUT_DIR}/lint_perf_scaling.json)
set(metrics_out ${OUT_DIR}/lint_perf_scaling_metrics.json)

execute_process(
  COMMAND ${BENCH_EXE} --smoke --json ${json_out} --metrics ${metrics_out}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "perf_scaling --smoke failed with ${bench_rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} --validate ${json_out} ${metrics_out}
  RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "JSON lint failed with ${lint_rc}")
endif()
