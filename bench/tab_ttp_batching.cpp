// §V-C.2: reducing the TTP's online time by batching charge queries.
//
// The auctioneer accumulates winners and flushes them to the TTP in
// batches; larger batches mean fewer TTP online windows but a longer
// wait before the last winner's charge is published.  This table
// quantifies that trade-off on real wire traffic (proto::MessageBus).
#include "bench_util.h"
#include "proto/session.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  auto cfg = bench::scenario_config(args, /*area_id=*/3);
  cfg.fcc.num_channels = args.full ? 40 : 24;
  cfg.num_users = args.full ? 100 : 60;
  sim::Scenario scenario(cfg);

  const std::vector<std::size_t> batch_sizes = {1, 4, 8, 16, 32, 64};

  Table table({"batch_size", "awards", "ttp_batches", "bytes_to_ttp",
               "bytes_from_ttp", "max_queue_latency"});
  for (std::size_t batch : batch_sizes) {
    core::LppaConfig lcfg;
    lcfg.num_channels = cfg.fcc.num_channels;
    lcfg.lambda = cfg.lambda_m;
    lcfg.coord_width = scenario.coord_width();
    lcfg.bid = core::PpbsBidConfig::advanced(
        cfg.bmax, 3, 4, core::ZeroDisguisePolicy::linear(cfg.bmax, 0.3));
    lcfg.ttp_batch_size = batch;

    core::TrustedThirdParty ttp(lcfg.bid, 21);
    proto::MessageBus bus;
    Rng rng(5);
    const auto result = proto::run_wire_auction(
        lcfg, ttp, scenario.locations(), scenario.bids(), bus, rng);

    const auto to_ttp =
        bus.link(proto::Address::auctioneer(), proto::Address::ttp());
    const auto from_ttp =
        bus.link(proto::Address::ttp(), proto::Address::auctioneer());
    // Worst-case positions a winner can wait before its batch flushes.
    const std::size_t max_latency =
        std::min(batch, result.awards.size());
    table.add_row({Table::cell(batch), Table::cell(result.awards.size()),
                   Table::cell(result.ttp_batches), Table::cell(to_ttp.bytes),
                   Table::cell(from_ttp.bytes), Table::cell(max_latency)});
  }
  bench::emit(table, args,
              "TTP batching (§V-C.2) — online windows vs publication lag");
  std::cout << "Expected: batches (= TTP online windows) fall as 1/batch\n"
               "size while total bytes stay ~constant; the price is the\n"
               "queue latency before the final winner's charge publishes.\n";
  return 0;
}
