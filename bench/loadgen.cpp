// Socket load generator: one full auction round over the real epoll
// transport with a thousand-plus concurrent SU connections on loopback,
// admission control engaged (a pack of freeloading probe connections is
// admitted first and squeezed out by the read deadline), and end-to-end
// latency percentiles reported from the obs histograms.
//
//   loadgen            1000 concurrent SU connections
//   loadgen --full     2000
//   loadgen --smoke    48 (the tier-1 loopback smoke ctest)
//   loadgen --conns N  explicit override
//
// Exit status is the contract: nonzero unless the round completes, every
// SU collects the announcement, admission control actually rejected
// someone, and every SU produced exactly one submit latency sample.
// --json / --metrics dumps hold to the strict-JSON gate
// (tools/bench_compare.py --validate), and the JSON sample carries
// *_us percentile fields bench_compare.py diffs with its
// latency-specific noise floor.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "net/session_port.h"
#include "proto/journal.h"

using namespace lppa;

namespace {

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  const double p = v[std::min(idx, v.size() - 1)];
  return std::isfinite(p) ? p : 0.0;
}

struct LoadgenResult {
  std::size_t conns = 0;
  double wall_ms = 0.0;
  double submit_p50_us = 0.0, submit_p90_us = 0.0, submit_p99_us = 0.0;
  double round_p50_us = 0.0, round_p90_us = 0.0, round_p99_us = 0.0;
  std::uint64_t frames_in = 0, frames_out = 0;
  std::uint64_t admission_rejected = 0;
  std::size_t reconnects = 0;
  std::size_t awards = 0;
  bool completed = false;
};

void write_json(const std::string& path, const LoadgenResult& r) {
  std::ofstream out = bench::open_output_or_die(path);
  obs::JsonWriter w(out, /*indent=*/2);
  w.begin_array();
  w.begin_object()
      .field("phase", std::string_view("loadgen"))
      .field("n", r.conns)
      .field("threads", std::size_t{1})
      .field("wall_ms", r.wall_ms)
      .field("submit_p50_us", r.submit_p50_us)
      .field("submit_p90_us", r.submit_p90_us)
      .field("submit_p99_us", r.submit_p99_us)
      .field("round_p50_us", r.round_p50_us)
      .field("round_p90_us", r.round_p90_us)
      .field("round_p99_us", r.round_p99_us)
      .field("frames_in", r.frames_in)
      .field("frames_out", r.frames_out)
      .field("frames_per_sec",
             bench::rate_per_sec(static_cast<double>(r.frames_in +
                                                     r.frames_out),
                                 r.wall_ms))
      .field("admission_rejected", r.admission_rejected)
      .field("reconnects", r.reconnects)
      .field("awards", r.awards)
      .field("completed", r.completed);
  w.end_object();
  w.end_array();
  out << "\n";
  bench::close_output_or_die(out, path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t conns =
      args.conns != 0 ? args.conns : (args.smoke ? 48 : (args.full ? 2000 : 1000));
  constexpr std::size_t kProbes = 8;  // freeloaders beyond the SU fleet
  constexpr std::uint64_t kSeed = 5;

  // Small channel count keeps allocation cheap: this bench stresses the
  // transport, not the auction math.
  core::LppaConfig config;
  config.num_channels = 2;
  config.lambda = 100;
  config.coord_width = 14;
  config.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  config.ttp_batch_size = 64;

  Rng world_rng(20130809);
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  for (std::size_t i = 0; i < conns; ++i) {
    locations.push_back({world_rng.below(5000), world_rng.below(5000)});
    auction::BidVector bv(config.num_channels);
    for (auto& b : bv) b = world_rng.below(16);
    bids.push_back(bv);
  }
  core::TrustedThirdParty ttp(config.bid, 77);

  obs::MetricsRegistry registry;
  net::ServerConfig server_config;
  // Cap exactly at the SU fleet size: the probes steal slots up front, so
  // the tail of the fleet is rejected until the read deadline evicts the
  // silent probes — admission control and slow-loris eviction both fire
  // on every run.
  server_config.max_connections = conns;
  // Whole-fleet backlog: a SYN dropped past the backlog retries on
  // multi-second retransmission timers, which would serialise the
  // stampede this bench exists to create.
  server_config.listen_backlog = static_cast<int>(conns) + 16;
  server_config.ack_submissions = true;
  server_config.metrics = &registry;
  server_config.limits.read_deadline = std::chrono::milliseconds(400);

  net::SocketRoundOptions round;
  round.hardened.max_retries = 14;  // ride out the probe-eviction stall

  proto::RoundJournal journal;
  proto::RoundReport report;
  report.num_users = conns;

  const auto t0 = std::chrono::steady_clock::now();
  LoadgenResult result;
  result.conns = conns;
  {
    net::AuctioneerServer server(config, conns, server_config, round,
                                 std::vector<bool>(conns, true), ttp, kSeed,
                                 &journal, &report, /*crashes=*/nullptr,
                                 /*start_ticks=*/0);

    // The freeloaders connect first and never speak.
    std::vector<net::Fd> probes;
    for (std::size_t i = 0; i < kProbes; ++i) {
      probes.push_back(net::connect_to(server.endpoint()));
    }

    // SU envelopes, built exactly once under the canonical RNG
    // discipline (one boot fork, per-SU forks in index order).
    std::vector<net::SuEnvelopes> sus;
    {
      Rng boot(kSeed);
      Rng su_master = boot.fork();
      for (std::size_t u = 0; u < conns; ++u) {
        Rng su_rng = su_master.fork();
        const proto::SuClient client(u, config, ttp.su_keys());
        net::SuEnvelopes e;
        e.su = u;
        e.location = client.location_envelope(locations[u], su_rng);
        e.bid = client.bid_envelope(bids[u], su_rng);
        sus.push_back(std::move(e));
      }
    }

    net::ClientPoolConfig client_config;
    client_config.endpoint = server.endpoint();
    client_config.backoff = round.hardened;
    client_config.tick = server_config.tick;
    client_config.max_concurrent_connects = 256;
    client_config.metrics = &registry;
    net::ClientPool pool(std::move(client_config), std::move(sus));

    const auto wall_ceiling =
        std::chrono::steady_clock::now() + std::chrono::seconds(180);
    while (server.status() == net::AuctioneerServer::Status::kRunning) {
      pool.run(std::chrono::milliseconds(20));
      if (std::chrono::steady_clock::now() > wall_ceiling) {
        std::cerr << "FATAL: round wedged: wall ceiling reached\n";
        server.stop();
        return 1;
      }
    }
    if (server.await_terminal() != net::AuctioneerServer::Status::kPublished) {
      std::cerr << "FATAL: server did not publish\n";
      server.rethrow_failure();
      return 1;
    }
    while (!pool.run(std::chrono::milliseconds(50))) {
      if (std::chrono::steady_clock::now() > wall_ceiling) break;
    }
    const auto t1 = std::chrono::steady_clock::now();

    if (registry.counter("net.admission_rejected").value() == 0) {
      // Large fleets can finish connecting only after the probes were
      // evicted, so the cap never filled mid-round.  Engage admission
      // control deterministically: with the fleet drained, a burst one
      // past the cap must see at least one connection refused.
      std::vector<net::Fd> burst;
      for (std::size_t i = 0; i <= conns; ++i) {
        burst.push_back(net::connect_to(server.endpoint()));
      }
      const auto burst_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (registry.counter("net.admission_rejected").value() == 0 &&
             std::chrono::steady_clock::now() < burst_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    result.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Percentiles twice over: exact order statistics into the JSON
    // sample, and the same samples through the obs histogram ladder for
    // the --metrics snapshot.
    const auto& submit = pool.submit_latencies_us();
    const auto& roundl = pool.round_latencies_us();
    auto& submit_hist = registry.histogram("net.submit.us");
    for (const double v : submit) submit_hist.observe(v);
    auto& round_hist = registry.histogram("net.round.us");
    for (const double v : roundl) round_hist.observe(v);
    result.submit_p50_us = percentile(submit, 0.50);
    result.submit_p90_us = percentile(submit, 0.90);
    result.submit_p99_us = percentile(submit, 0.99);
    result.round_p50_us = percentile(roundl, 0.50);
    result.round_p90_us = percentile(roundl, 0.90);
    result.round_p99_us = percentile(roundl, 0.99);
    result.frames_in = registry.counter("net.frames_in").value();
    result.frames_out = registry.counter("net.frames_out").value();
    result.admission_rejected =
        registry.counter("net.admission_rejected").value();
    result.reconnects = pool.reconnects();
    result.completed = report.completed && pool.all_done();

    const proto::Envelope env =
        proto::Envelope::deserialize(pool.announcement());
    result.awards =
        proto::WinnerAnnouncement::deserialize(env.payload).awards.size();

    // The contract the exit status enforces.
    bool ok = true;
    if (!result.completed) {
      std::cerr << "FATAL: round incomplete or SUs missing the announcement ("
                << pool.done_count() << "/" << conns << " done)\n";
      ok = false;
    }
    if (result.admission_rejected == 0) {
      std::cerr << "FATAL: admission control never engaged\n";
      ok = false;
    }
    if (submit.size() != conns) {
      std::cerr << "FATAL: expected " << conns << " submit samples, got "
                << submit.size() << "\n";
      ok = false;
    }
    if (roundl.size() != conns) {
      std::cerr << "FATAL: expected " << conns << " round samples, got "
                << roundl.size() << "\n";
      ok = false;
    }
    if (!ok) return 1;
  }

  write_json(args.json_path.empty() ? "BENCH_loadgen.json" : args.json_path,
             result);
  bench::dump_metrics(registry, args);

  Table table({"conns", "wall_ms", "submit_p50_us", "submit_p99_us",
               "round_p50_us", "round_p99_us", "frames", "rejected",
               "reconnects", "awards"});
  table.add_row({Table::cell(result.conns), Table::cell(result.wall_ms, 1),
                 Table::cell(result.submit_p50_us, 0),
                 Table::cell(result.submit_p99_us, 0),
                 Table::cell(result.round_p50_us, 0),
                 Table::cell(result.round_p99_us, 0),
                 Table::cell(result.frames_in + result.frames_out),
                 Table::cell(result.admission_rejected),
                 Table::cell(result.reconnects), Table::cell(result.awards)});
  bench::emit(table, args, "Socket transport load (one round, loopback)");
  std::cout << "Expected: the round completes with every SU holding the\n"
               "announcement; the freeloading probes are admitted, starve,\n"
               "and are evicted by the read deadline, briefly pushing the\n"
               "fleet over the admission cap (rejected > 0); p99 latencies\n"
               "stay tail-bounded by backpressure + per-connection budgets.\n";
  return 0;
}
