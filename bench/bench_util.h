// Shared plumbing for the figure/table reproduction binaries.
//
// Every binary accepts "--full" to run at the paper's scale (100x100
// cells, 129 channels, 100+ users); the default profile shrinks the
// workload so the whole bench suite finishes in a couple of minutes while
// preserving every qualitative shape.  "--csv" switches the output to
// machine-readable CSV.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/experiments.h"

namespace lppa::bench {

struct BenchArgs {
  bool full = false;
  bool smoke = false;        ///< --smoke: tiny workload for the perfsmoke ctest
  bool csv = false;
  std::string json_path;     ///< --json <path>: machine-readable dump target
  std::string metrics_path;  ///< --metrics <path>: obs snapshot target
  std::size_t threads = 0;   ///< --threads N: worker threads (0 = hardware)
  std::size_t shards = 0;    ///< --shards N: shard count for the
                             ///< shard_scaling phase (0 = default sweep)
  std::size_t conns = 0;     ///< --conns N: concurrent SU connections for
                             ///< loadgen (0 = profile default)

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) args.full = true;
      else if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
      else if (std::strcmp(argv[i], "--csv") == 0) args.csv = true;
      else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
        args.metrics_path = argv[++i];
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        args.shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
        args.conns = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::cout << "usage: " << argv[0]
                  << " [--full] [--smoke] [--csv] [--json <path>]"
                     " [--metrics <path>] [--threads N] [--shards N]\n"
                  << "  --full        paper-scale workload (slower)\n"
                  << "  --smoke       small-n workload (perfsmoke regression gate)\n"
                  << "  --csv         machine-readable output\n"
                  << "  --json <path> write results as JSON to <path>\n"
                  << "  --metrics <path> write an obs metrics snapshot"
                     " (.prom = Prometheus text)\n"
                  << "  --threads N   worker threads for parallel phases"
                     " (0 = hardware)\n"
                  << "  --shards N    geo-shard count for perf_scaling's"
                     " shard_scaling phase (0 = default sweep)\n"
                  << "  --conns N     concurrent SU connections for loadgen"
                     " (0 = profile default)\n";
        std::exit(0);
      } else {
        std::cerr << "FATAL: unknown or incomplete flag: " << argv[i] << "\n";
        std::exit(1);
      }
    }
    // Fail at parse time, not after minutes of sweep: every binary
    // accepts these flags, but not every binary reaches its dump site
    // (and a crashed sweep should not be the first writability check).
    probe_writable(args.json_path);
    probe_writable(args.metrics_path);
    return args;
  }

 private:
  /// Dies (nonzero exit) unless `path` can be opened for writing.  The
  /// probe opens in append mode so an existing file is not clobbered; a
  /// file the probe itself created is removed again.
  static void probe_writable(const std::string& path) {
    if (path.empty()) return;
    const bool existed = static_cast<bool>(std::ifstream(path));
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::cerr << "FATAL: cannot open '" << path << "' for writing\n";
      std::exit(1);
    }
    probe.close();
    if (!existed) std::remove(path.c_str());
  }
};

/// Opens `path` for writing.  An unwritable --json / --metrics target is
/// a hard error (nonzero exit), never a silently dropped artifact — a CI
/// sweep must not "pass" while producing nothing.
inline std::ofstream open_output_or_die(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "FATAL: cannot open '" << path << "' for writing\n";
    std::exit(1);
  }
  return out;
}

/// Flushes `out` and dies (nonzero exit) if any write failed — catches
/// disk-full and path-removed-mid-run, which leave a truncated document.
inline void close_output_or_die(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out.good()) {
    std::cerr << "FATAL: write to '" << path << "' failed\n";
    std::exit(1);
  }
}

/// `count` per second given `wall_ms` milliseconds, clamped to 0.0 when
/// the timer read zero or the division overflows: bench JSON must never
/// carry inf/nan (strict parsers — and tools/bench_compare.py — reject
/// them).
inline double rate_per_sec(double count, double wall_ms) {
  if (!(wall_ms > 0.0)) return 0.0;
  const double rate = 1000.0 * count / wall_ms;
  return std::isfinite(rate) ? rate : 0.0;
}

/// Honors --metrics: writes the registry snapshot and exits nonzero when
/// the target cannot be written.  A no-op without the flag.
inline void dump_metrics(const obs::MetricsRegistry& registry,
                         const BenchArgs& args) {
  if (args.metrics_path.empty()) return;
  std::string error;
  if (!obs::write_metrics_file(registry, args.metrics_path, &error)) {
    std::cerr << "FATAL: " << error << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << args.metrics_path << " (metrics snapshot)\n";
}

/// The paper's experimental world scaled by the profile.
inline sim::ScenarioConfig scenario_config(const BenchArgs& args, int area_id,
                                           std::uint64_t seed = 20130708) {
  sim::ScenarioConfig cfg;
  cfg.area_id = area_id;
  cfg.seed = seed;
  if (args.full) {
    cfg.fcc.rows = 100;
    cfg.fcc.cols = 100;
    cfg.fcc.num_channels = 129;
    cfg.num_users = 100;
  } else {
    cfg.fcc.rows = 100;
    cfg.fcc.cols = 100;
    cfg.fcc.num_channels = 60;
    cfg.num_users = 60;
  }
  return cfg;
}

inline void emit(const Table& table, const BenchArgs& args,
                 const std::string& title) {
  std::cout << "== " << title << " ==\n";
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

}  // namespace lppa::bench
