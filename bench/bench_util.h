// Shared plumbing for the figure/table reproduction binaries.
//
// Every binary accepts "--full" to run at the paper's scale (100x100
// cells, 129 channels, 100+ users); the default profile shrinks the
// workload so the whole bench suite finishes in a couple of minutes while
// preserving every qualitative shape.  "--csv" switches the output to
// machine-readable CSV.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/experiments.h"

namespace lppa::bench {

struct BenchArgs {
  bool full = false;
  bool smoke = false;        ///< --smoke: tiny workload for the perfsmoke ctest
  bool csv = false;
  std::string json_path;     ///< --json <path>: machine-readable dump target
  std::size_t threads = 0;   ///< --threads N: worker threads (0 = hardware)

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) args.full = true;
      else if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
      else if (std::strcmp(argv[i], "--csv") == 0) args.csv = true;
      else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::cout << "usage: " << argv[0]
                  << " [--full] [--smoke] [--csv] [--json <path>] [--threads N]\n"
                  << "  --full        paper-scale workload (slower)\n"
                  << "  --smoke       small-n workload (perfsmoke regression gate)\n"
                  << "  --csv         machine-readable output\n"
                  << "  --json <path> write results as JSON to <path>\n"
                  << "  --threads N   worker threads for parallel phases"
                     " (0 = hardware)\n";
        std::exit(0);
      }
    }
    return args;
  }
};

/// The paper's experimental world scaled by the profile.
inline sim::ScenarioConfig scenario_config(const BenchArgs& args, int area_id,
                                           std::uint64_t seed = 20130708) {
  sim::ScenarioConfig cfg;
  cfg.area_id = area_id;
  cfg.seed = seed;
  if (args.full) {
    cfg.fcc.rows = 100;
    cfg.fcc.cols = 100;
    cfg.fcc.num_channels = 129;
    cfg.num_users = 100;
  } else {
    cfg.fcc.rows = 100;
    cfg.fcc.cols = 100;
    cfg.fcc.num_channels = 60;
    cfg.num_users = 60;
  }
  return cfg;
}

inline void emit(const Table& table, const BenchArgs& args,
                 const std::string& title) {
  std::cout << "== " << title << " ==\n";
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

}  // namespace lppa::bench
