// Fig. 4(b): success rate of the BCM and BPM attacks in Area 4 as the
// number of channels and the BPM keep-fraction vary.  Success = the
// victim's true cell is inside the attacker's candidate set; BCM on
// truthful bids always succeeds, BPM trades set size against success.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const auto cfg = bench::scenario_config(args, /*area_id=*/4);
  const sim::Scenario scenario(cfg);

  const std::vector<std::size_t> channel_counts =
      args.full ? std::vector<std::size_t>{20, 40, 80, 129}
                : std::vector<std::size_t>{10, 20, 40, 60};
  const std::vector<double> fractions = {1.0, 0.5, 1.0 / 3.0, 0.25, 0.125};

  Table table({"channels", "bpm_fraction", "bcm_success", "bpm_success",
               "bpm_err_km"});
  for (std::size_t k : channel_counts) {
    for (double f : fractions) {
      const auto point = sim::run_attack_point(scenario, k, f, 250);
      table.add_row(
          {Table::cell(k), Table::cell(f, 3),
           Table::cell(1.0 - point.bcm.failure_rate, 3),
           Table::cell(1.0 - point.bpm.failure_rate, 3),
           Table::cell(point.bpm.mean_incorrectness_m / 1000.0, 2)});
    }
  }
  bench::emit(table, args, "Fig 4(b) — attack success rate (Area 4)");
  std::cout << "Expected shape: BCM success stays at 1.0; BPM success\n"
               "declines as the keep-fraction shrinks (error rate rises\n"
               "while the candidate set narrows).\n";
  return 0;
}
