// Shared driver for Fig. 5(a)-(d): one defence sweep over the
// zero-replace probability (1 - p0) and the attacker's top-percentage,
// in Area 3, with the unprotected BCM/BPM baselines alongside.  Each
// figure binary selects one metric column.
#pragma once

#include <functional>

#include "bench_util.h"

namespace lppa::bench {

struct DefenseFigure {
  std::string title;
  std::string column;
  std::string expectation;
  std::function<double(const core::AggregateMetrics&)> metric;
};

inline int run_defense_figure(int argc, char** argv,
                              const DefenseFigure& figure) {
  const auto args = BenchArgs::parse(argc, argv);

  const auto cfg = scenario_config(args, /*area_id=*/3);
  sim::Scenario scenario(cfg);

  const std::vector<double> replace_probs = {0.1, 0.2, 0.3, 0.4, 0.5,
                                             0.6, 0.7, 0.8, 0.9, 1.0};
  const std::vector<double> fractions = {0.25, 0.5, 0.66, 0.8, 1.0};

  sim::DefenseOptions base;
  // Average over resampled user populations (smoother curves at --full).
  const std::size_t repetitions = args.full ? 3 : 2;
  const auto sweep = sim::run_defense_sweep_repeated(
      scenario, repetitions, replace_probs, fractions, base, 424242);

  std::cout << "baseline (no LPPA):  BCM " << figure.column << " = "
            << figure.metric(sweep.plain_bcm) << ",  BPM " << figure.column
            << " = " << figure.metric(sweep.plain_bpm) << "\n\n";

  Table table({"replace_prob", "top25%", "top50%", "top66%", "top80%",
               "top100%"});
  for (double replace : replace_probs) {
    std::vector<std::string> row = {Table::cell(replace, 2)};
    for (double fraction : fractions) {
      for (const auto& point : sweep.points) {
        if (point.replace_prob == replace && point.top_fraction == fraction) {
          row.push_back(Table::cell(figure.metric(point.lppa), 3));
        }
      }
    }
    table.add_row(std::move(row));
  }
  emit(table, args, figure.title);
  std::cout << figure.expectation << "\n";
  return 0;
}

}  // namespace lppa::bench
