// Fig. 4(a): number of possible location cells of the BCM and BPM attacks
// in Area 4, as the number of auctioned channels and the BPM keep-fraction
// vary.  The rightmost point of each paper curve (fraction 1.0) is the
// BCM output itself.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const auto cfg = bench::scenario_config(args, /*area_id=*/4);
  const sim::Scenario scenario(cfg);

  const std::vector<std::size_t> channel_counts =
      args.full ? std::vector<std::size_t>{20, 40, 80, 129}
                : std::vector<std::size_t>{10, 20, 40, 60};
  const std::vector<double> fractions = {1.0, 0.5, 1.0 / 3.0, 0.25, 0.125};
  // The paper caps the BPM output (e.g. 250 cells for the 80-channel
  // run) to stop huge candidate sets diluting the ranking.
  const std::size_t cap = 250;

  Table table({"channels", "bpm_fraction", "bcm_cells", "bpm_cells",
               "bpm_cells_cap"});
  for (std::size_t k : channel_counts) {
    for (double f : fractions) {
      const auto point = sim::run_attack_point(scenario, k, f, 0);
      const auto capped = sim::run_attack_point(scenario, k, f, cap);
      table.add_row({Table::cell(k), Table::cell(f, 3),
                     Table::cell(point.bcm.mean_possible_cells, 1),
                     Table::cell(point.bpm.mean_possible_cells, 1),
                     Table::cell(capped.bpm.mean_possible_cells, 1)});
    }
  }
  bench::emit(table, args,
              "Fig 4(a) — possible location cells, BCM vs BPM (Area 4)");
  std::cout << "Expected shape: cells shrink as channels grow; BPM at\n"
               "smaller fractions shrinks the set further below BCM.\n";
  return 0;
}
