// Ablation for §V-C.3: repeated participation vs ID mixing.
//
// A bidder whose position is fixed participates in R successive
// auctions.  Without fresh pseudonyms the attacker majority-votes over
// the rounds' inferred availability sets — genuine channels recur while
// disguised zeros are per-round noise — and the zero-disguise defence
// erodes.  With ID mixing the attacker is stuck at single-round quality.
#include "bench_util.h"
#include "sim/multi_round.h"

int main(int argc, char** argv) {
  using namespace lppa;
  const auto args = bench::BenchArgs::parse(argc, argv);

  auto cfg = bench::scenario_config(args, /*area_id=*/3);
  cfg.fcc.num_channels = args.full ? 60 : 30;
  cfg.num_users = args.full ? 60 : 40;
  sim::Scenario scenario(cfg);

  const std::vector<std::size_t> round_counts = {1, 2, 4, 8, 16};

  Table table({"rounds", "mix_ids", "failure_rate", "mean_cells",
               "channels_used"});
  for (bool mix : {false, true}) {
    for (std::size_t rounds : round_counts) {
      sim::MultiRoundConfig mrc;
      mrc.rounds = rounds;
      mrc.mix_ids = mix;
      mrc.replace_prob = 0.5;
      const auto result = sim::run_multi_round(scenario, mrc, 5150);
      table.add_row({Table::cell(rounds), mix ? "yes" : "no",
                     Table::cell(result.metrics.failure_rate, 3),
                     Table::cell(result.metrics.mean_possible_cells, 1),
                     Table::cell(result.mean_channels_used, 1)});
    }
  }
  bench::emit(table, args,
              "Ablation — repeated participation vs ID mixing (§V-C.3)");
  std::cout << "Expected: without mixing, more rounds let majority voting\n"
               "strip the disguise (failure falls, candidate sets shrink);\n"
               "with mixing, attack quality stays at single-round level\n"
               "regardless of rounds.\n";
  return 0;
}
