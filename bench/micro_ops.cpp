// Micro-benchmarks backing the paper's §IV-C.4 claim that the scheme's
// hash-based machinery is cheap: HMAC, prefix conversion, masked
// comparisons, conflict-graph construction and full auction rounds,
// scaling in N and k.
#include <benchmark/benchmark.h>

#include "core/lppa_auction.h"
#include "core/ppbs_location.h"
#include "crypto/hmac.h"
#include "prefix/hashed_set.h"
#include "sim/scenario.h"

namespace {

using namespace lppa;

crypto::SecretKey bench_key() {
  Rng rng(42);
  return crypto::SecretKey::generate(rng);
}

void BM_HmacSha256U64(benchmark::State& state) {
  const auto key = bench_key();
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256_u64(key, v++));
  }
}
BENCHMARK(BM_HmacSha256U64);

void BM_PrefixFamily(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  std::uint64_t v = 0;
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prefix::prefix_family(v++ & mask, w));
  }
}
BENCHMARK(BM_PrefixFamily)->Arg(7)->Arg(17)->Arg(32);

void BM_RangePrefixes(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const std::uint64_t top = (std::uint64_t{1} << w) - 1;
  std::uint64_t a = 1;
  for (auto _ : state) {
    a = (a * 2862933555777941757ULL + 3037000493ULL) & (top >> 1);
    benchmark::DoNotOptimize(prefix::range_prefixes(a, top - 1, w));
  }
}
BENCHMARK(BM_RangePrefixes)->Arg(7)->Arg(17)->Arg(32);

void BM_MaskedValueFamily(benchmark::State& state) {
  const auto key = bench_key();
  const int w = static_cast<int>(state.range(0));
  std::uint64_t v = 0;
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prefix::HashedPrefixSet::of_value(key, v++ & mask, w));
  }
}
BENCHMARK(BM_MaskedValueFamily)->Arg(7)->Arg(17);

void BM_MaskedIntersection(benchmark::State& state) {
  const auto key = bench_key();
  const int w = 17;
  Rng rng(7);
  const auto family = prefix::HashedPrefixSet::of_value(key, 12345, w);
  auto range = prefix::HashedPrefixSet::of_range(key, 1000, 60000, w);
  range.pad_to(prefix::max_range_prefixes(w), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.intersects(range));
  }
}
BENCHMARK(BM_MaskedIntersection);

void BM_EncryptBidVector(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const auto gb = crypto::SecretKey::generate(rng);
  const auto gc = crypto::SecretKey::generate(rng);
  const auto cfg = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::uniform(15, 0.5));
  const core::BidSubmitter submitter(cfg, gb, gc);
  auction::BidVector bids(k);
  for (auto& b : bids) b = rng.below(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(submitter.submit(bids, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_EncryptBidVector)->Arg(10)->Arg(40)->Arg(129);

void BM_ConflictGraphFromSubmissions(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  const auto g0 = crypto::SecretKey::generate(rng);
  const core::PpbsLocation protocol(g0, 17, 1000);
  std::vector<core::LocationSubmission> subs;
  for (std::size_t i = 0; i < n; ++i) {
    subs.push_back(protocol.submit({rng.below(70000), rng.below(70000)}, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PpbsLocation::build_conflict_graph(subs));
  }
}
BENCHMARK(BM_ConflictGraphFromSubmissions)->Arg(25)->Arg(50)->Arg(100);

void BM_ConflictGraphPairwise(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  const auto g0 = crypto::SecretKey::generate(rng);
  const core::PpbsLocation protocol(g0, 17, 1000);
  std::vector<core::LocationSubmission> subs;
  for (std::size_t i = 0; i < n; ++i) {
    subs.push_back(protocol.submit({rng.below(70000), rng.below(70000)}, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::PpbsLocation::build_conflict_graph_pairwise(subs));
  }
}
BENCHMARK(BM_ConflictGraphPairwise)->Arg(25)->Arg(50)->Arg(100);

void BM_ConflictGraphPlaintextSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<auction::SuLocation> locs;
  for (std::size_t i = 0; i < n; ++i) {
    locs.push_back({rng.below(70000), rng.below(70000)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        auction::ConflictGraph::from_locations_sweep(locs, 1000));
  }
}
BENCHMARK(BM_ConflictGraphPlaintextSweep)->Arg(25)->Arg(100)->Arg(400);

void BM_FullLppaRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 20;
  Rng world(17);
  std::vector<auction::SuLocation> locs;
  std::vector<auction::BidVector> bids;
  for (std::size_t i = 0; i < n; ++i) {
    locs.push_back({world.below(70000), world.below(70000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = world.below(16);
    bids.push_back(bv);
  }
  core::LppaConfig cfg;
  cfg.num_channels = k;
  cfg.lambda = 1000;
  cfg.coord_width = 17;
  cfg.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::uniform(15, 0.5));
  for (auto _ : state) {
    core::LppaAuction engine(cfg, 5);
    Rng rng(23);
    benchmark::DoNotOptimize(engine.run(locs, bids, rng));
  }
}
BENCHMARK(BM_FullLppaRound)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_PlainAuctionRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 20;
  Rng world(17);
  std::vector<auction::SuLocation> locs;
  std::vector<auction::BidVector> bids;
  for (std::size_t i = 0; i < n; ++i) {
    locs.push_back({world.below(70000), world.below(70000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = world.below(16);
    bids.push_back(bv);
  }
  const auction::PlainAuction plain(k, 1000);
  for (auto _ : state) {
    Rng rng(23);
    benchmark::DoNotOptimize(plain.run(locs, bids, rng));
  }
}
BENCHMARK(BM_PlainAuctionRound)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
