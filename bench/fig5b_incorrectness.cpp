// Fig. 5(b): attacker incorrectness (expected distance between guess and
// truth, km, all attacked users) vs the zero-replace probability.
#include "fig5_defense.h"

int main(int argc, char** argv) {
  using namespace lppa;
  return bench::run_defense_figure(
      argc, argv,
      bench::DefenseFigure{
          "Fig 5(b) — incorrectness (km) under LPPA, Area 3",
          "incorrectness_km",
          "Expected shape: incorrectness stays roughly flat across the\n"
          "replace probability (the paper reports ~constant curves) and\n"
          "sits above the BPM baseline.",
          [](const core::AggregateMetrics& m) {
            return m.mean_incorrectness_m / 1000.0;
          }});
}
